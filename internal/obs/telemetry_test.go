package obs

import (
	"testing"
	"time"
)

// TestBarrierHistogramSnapshotAndReset pins the job-boundary semantics the
// repartitioner depends on: per-job histograms drain into their lifetime twin
// at BeginJob/EndJob, the JobReport carries only that job's samples, and
// MachineHistogram returns the cumulative per-machine view including the
// running job.
func TestBarrierHistogramSnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	r.Attach(3)

	// Two samples on machine 1 before any job: the next BeginJob folds them
	// into the lifetime histogram without attributing them to a job.
	r.Observe(1, HistBarrier, 2*time.Millisecond)
	r.Observe(1, HistBarrier, 4*time.Millisecond)

	r.BeginJob(1, "a")
	r.Observe(1, HistBarrier, time.Millisecond)
	r.Observe(1, HistBarrier, time.Millisecond)
	r.Observe(1, HistBarrier, time.Millisecond)
	r.Observe(2, HistBarrier, 8*time.Millisecond)
	rep := r.EndJob(1, 10*time.Millisecond)

	job := rep.Histograms[HistBarrier.String()]
	if job.Count != 4 {
		t.Errorf("job report barrier count = %d, want the 4 in-job samples only", job.Count)
	}
	if want := int64(11 * time.Millisecond); job.SumNS != want {
		t.Errorf("job report barrier sum = %v, want %v", job.SumNS, want)
	}

	// The per-machine lifetime view is cumulative: pre-job + in-job samples.
	if got := r.MachineHistogram(1, HistBarrier); got.Count != 5 || got.SumNS != int64(9*time.Millisecond) {
		t.Errorf("machine 1 lifetime barrier = {count %d, sum %d}, want {5, %d}",
			got.Count, got.SumNS, int64(9*time.Millisecond))
	}
	if got := r.MachineHistogram(2, HistBarrier).Count; got != 1 {
		t.Errorf("machine 2 lifetime barrier count = %d, want 1", got)
	}
	if got := r.MachineHistogram(0, HistBarrier).Count; got != 0 {
		t.Errorf("machine 0 lifetime barrier count = %d, want 0", got)
	}

	// A sample observed outside any job shows up in the lifetime view
	// immediately (running cell), not just after the next drain.
	r.Observe(1, HistBarrier, 16*time.Millisecond)
	if got := r.MachineHistogram(1, HistBarrier).Count; got != 6 {
		t.Errorf("machine 1 barrier count with a running sample = %d, want 6", got)
	}

	// A second job drains the straggler sample and reports none of its own:
	// drained history must never resurface in a later job's report.
	r.BeginJob(2, "b")
	rep2 := r.EndJob(2, time.Millisecond)
	if s, ok := rep2.Histograms[HistBarrier.String()]; ok && s.Count != 0 {
		t.Errorf("job 2 resurfaced %d drained barrier samples", s.Count)
	}
	if got := r.MachineHistogram(1, HistBarrier).Count; got != 6 {
		t.Errorf("machine 1 lifetime barrier count after job 2 = %d, want 6", got)
	}
}

// TestLifetimeTrafficAccumulatesAcrossJobs pins the traffic-matrix ledger:
// JobReport rows are per-job deltas, LifetimeTraffic is the cumulative matrix
// including the running job, and the diagonal stays zero.
func TestLifetimeTrafficAccumulatesAcrossJobs(t *testing.T) {
	r := NewRegistry()
	r.Attach(2)

	r.Traffic(0, 1, 100) // pre-job: drained to lifetime by BeginJob

	r.BeginJob(1, "a")
	r.Traffic(0, 1, 50)
	r.Traffic(1, 0, 70)
	rep := r.EndJob(1, time.Millisecond)

	if rep.TrafficBytes[0][1] != 50 || rep.TrafficBytes[1][0] != 70 {
		t.Errorf("job traffic = %v, want per-job deltas [[0 50] [70 0]]", rep.TrafficBytes)
	}

	r.Traffic(1, 0, 5) // running, outside any job

	lt := r.LifetimeTraffic()
	want := [][]int64{{0, 150}, {75, 0}}
	for s := range want {
		for d := range want[s] {
			if lt[s][d] != want[s][d] {
				t.Errorf("lifetime traffic[%d][%d] = %d, want %d (full matrix %v)",
					s, d, lt[s][d], want[s][d], lt)
			}
		}
	}
}
