package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// JobReport is one job's observability snapshot: counter deltas, latency
// histograms, the per-(src,dst) traffic matrix, and every span the trace
// rings retained for the job. Built by Registry.EndJob; serializes cleanly
// for the bench harness and the debug HTTP surface.
type JobReport struct {
	Job      uint64        `json:"job"`
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
	Machines int           `json:"machines"`
	// Counters sums each counter across machines; PerMachine has the split
	// (only nonzero entries are kept per machine).
	Counters   map[string]int64   `json:"counters"`
	PerMachine []map[string]int64 `json:"per_machine"`
	// TrafficBytes[src][dst] / TrafficFrames[src][dst] are the job's wire
	// traffic matrix as observed by the endpoint wrapper.
	TrafficBytes  [][]int64 `json:"traffic_bytes"`
	TrafficFrames [][]int64 `json:"traffic_frames"`
	// WireRawBytes[src][dst] / WireBytes[src][dst] split the traffic matrix
	// by the wire compression layer: the fixed-width payload size batches
	// would have shipped versus what they actually occupied. Their
	// cell-wise quotient is the per-(src,dst) compression ratio.
	WireRawBytes [][]int64 `json:"wire_raw_bytes"`
	WireBytes    [][]int64 `json:"wire_bytes"`
	// Histograms maps histogram name to its merged cross-machine snapshot.
	Histograms map[string]HistSnapshot `json:"histograms"`
	// Spans is the job's trace, ordered by start time.
	Spans []Span `json:"spans"`
}

// TotalBytes sums the traffic matrix.
func (j *JobReport) TotalBytes() int64 {
	if j == nil {
		return 0
	}
	var n int64
	for _, row := range j.TrafficBytes {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// WireSavings sums the compression layer's raw and actual payload bytes
// across the matrix. ratio is wire/raw (1.0 when compression never engaged).
func (j *JobReport) WireSavings() (raw, wire int64, ratio float64) {
	if j == nil {
		return 0, 0, 1
	}
	for s := range j.WireRawBytes {
		for d := range j.WireRawBytes[s] {
			raw += j.WireRawBytes[s][d]
			wire += j.WireBytes[s][d]
		}
	}
	if raw == 0 {
		return 0, 0, 1
	}
	return raw, wire, float64(wire) / float64(raw)
}

// SpanCount returns how many spans of kind k the report holds.
func (j *JobReport) SpanCount(k SpanKind) int {
	if j == nil {
		return 0
	}
	n := 0
	for _, s := range j.Spans {
		if s.Kind == k {
			n++
		}
	}
	return n
}

// PhaseTotals sums span durations by kind across machines, giving the
// per-phase time decomposition the paper's evaluation tables are built from.
func (j *JobReport) PhaseTotals() map[string]time.Duration {
	if j == nil {
		return nil
	}
	out := make(map[string]time.Duration)
	for _, s := range j.Spans {
		out[s.Kind.String()] += time.Duration(s.DurNS)
	}
	return out
}

// Line renders the one-line job report printed by pgxd-run:
// name, duration, traffic, phase split, and RTT tail latency.
func (j *JobReport) Line() string {
	if j == nil {
		return "obs: no report"
	}
	ph := j.PhaseTotals()
	line := fmt.Sprintf("job=%d name=%q dur=%s sent=%s/%d-frames task=%s barrier=%s drain=%s",
		j.Job, j.Name, j.Duration.Round(time.Microsecond),
		fmtBytes(j.TotalBytes()), j.Counters["frames_sent"],
		ph["task_phase"].Round(time.Microsecond),
		ph["barrier"].Round(time.Microsecond),
		ph["write_drain"].Round(time.Microsecond))
	if h, ok := j.Histograms["read_rtt_ns"]; ok && h.Count > 0 {
		line += fmt.Sprintf(" rtt-p99<=%s", h.Quantile(0.99).Round(time.Microsecond))
	}
	if raw, wire, ratio := j.WireSavings(); raw > 0 {
		line += fmt.Sprintf(" compress=%.2f (%s saved)", ratio, fmtBytes(raw-wire))
	}
	return line
}

// TrafficMatrixString renders the byte matrix as an aligned table with row
// and column sums — the EXPERIMENTS.md walkthrough reads this directly.
func (j *JobReport) TrafficMatrixString() string {
	if j == nil || len(j.TrafficBytes) == 0 {
		return "(no traffic recorded)"
	}
	p := len(j.TrafficBytes)
	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "src\\dst")
	for d := 0; d < p; d++ {
		fmt.Fprintf(&b, "%12d", d)
	}
	fmt.Fprintf(&b, "%12s\n", "total")
	colSum := make([]int64, p)
	for s := 0; s < p; s++ {
		fmt.Fprintf(&b, "%8d", s)
		var rowSum int64
		for d := 0; d < p; d++ {
			v := j.TrafficBytes[s][d]
			rowSum += v
			colSum[d] += v
			fmt.Fprintf(&b, "%12s", fmtBytes(v))
		}
		fmt.Fprintf(&b, "%12s\n", fmtBytes(rowSum))
	}
	fmt.Fprintf(&b, "%8s", "total")
	var grand int64
	for d := 0; d < p; d++ {
		grand += colSum[d]
		fmt.Fprintf(&b, "%12s", fmtBytes(colSum[d]))
	}
	fmt.Fprintf(&b, "%12s", fmtBytes(grand))
	return b.String()
}

// CompressionMatrixString renders the per-(src,dst) compression ratio
// (wire/raw; "-" where no compression-eligible traffic flowed) plus the
// job-wide total — the companion to TrafficMatrixString for reading the
// wire compression layer's effect out of the traffic matrix.
func (j *JobReport) CompressionMatrixString() string {
	raw, wire, ratio := j.WireSavings()
	if raw == 0 {
		return "(no compression-eligible traffic)"
	}
	p := len(j.WireRawBytes)
	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "src\\dst")
	for d := 0; d < p; d++ {
		fmt.Fprintf(&b, "%8d", d)
	}
	b.WriteByte('\n')
	for s := 0; s < p; s++ {
		fmt.Fprintf(&b, "%8d", s)
		for d := 0; d < p; d++ {
			if j.WireRawBytes[s][d] == 0 {
				fmt.Fprintf(&b, "%8s", "-")
				continue
			}
			fmt.Fprintf(&b, "%8.2f", float64(j.WireBytes[s][d])/float64(j.WireRawBytes[s][d]))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "total ratio=%.2f raw=%s wire=%s saved=%s",
		ratio, fmtBytes(raw), fmtBytes(wire), fmtBytes(raw-wire))
	return b.String()
}

// WriteJSON writes the report as indented JSON to path.
func (j *JobReport) WriteJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := j.EncodeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// EncodeJSON writes the report as indented JSON to w.
func (j *JobReport) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 10*1024*1024:
		return fmt.Sprintf("%dMiB", n/(1024*1024))
	case n >= 10*1024:
		return fmt.Sprintf("%dKiB", n/1024)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
