package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
)

// Handler returns an http.Handler exposing the registry's debug surface:
//
//	/debug/metrics   lifetime counters + last-job report (JSON)
//	/debug/trace     recent spans, ?max=N caps per machine, ?text=1 for logs
//	/debug/abort     last flight-recorder dump (JSON), 404 when none
//	/debug/pprof/*   the standard Go profiler endpoints
//
// pgxd-server mounts this on its -debug-addr listener; tests mount it on
// httptest servers. The handler is safe while jobs run — all reads are
// snapshots.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", r.serveMetrics)
	mux.HandleFunc("/debug/trace", r.serveTrace)
	mux.HandleFunc("/debug/abort", r.serveAbort)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// metricsPayload is the /debug/metrics response shape.
type metricsPayload struct {
	Machines    int                    `json:"machines"`
	Jobs        int64                  `json:"jobs"`
	Aborts      int64                  `json:"aborts"`
	Lifetime    map[string]int64       `json:"lifetime"`
	Compression *compressionPayload    `json:"compression,omitempty"`
	Hists       map[string]histPayload `json:"histograms"`
	LastJob     *JobReport             `json:"last_job,omitempty"`
}

// compressionPayload summarizes the wire compression layer over the process
// lifetime: fixed-width vs. actual payload bytes, the quotient, and the
// saving.
type compressionPayload struct {
	RawBytes   int64   `json:"raw_bytes"`
	WireBytes  int64   `json:"wire_bytes"`
	SavedBytes int64   `json:"saved_bytes"`
	Ratio      float64 `json:"ratio"`
}

type histPayload struct {
	Count  int64 `json:"count"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
}

func (r *Registry) serveMetrics(w http.ResponseWriter, req *http.Request) {
	if r == nil || !r.Attached() {
		http.Error(w, "obs: registry not attached", http.StatusServiceUnavailable)
		return
	}
	p := metricsPayload{
		Machines: r.Machines(),
		Jobs:     r.JobsObserved(),
		Aborts:   r.AbortsObserved(),
		Lifetime: r.LifetimeCounters(),
		Hists:    make(map[string]histPayload, int(numHists)),
		LastJob:  r.LastReport(),
	}
	if raw := p.Lifetime[CtrWireRawBytes.String()]; raw > 0 {
		wire := p.Lifetime[CtrWireBytes.String()]
		p.Compression = &compressionPayload{
			RawBytes:   raw,
			WireBytes:  wire,
			SavedBytes: raw - wire,
			Ratio:      float64(wire) / float64(raw),
		}
	}
	for h := HistID(0); h < numHists; h++ {
		s := r.LifetimeHistogram(h)
		if s.Count == 0 {
			continue
		}
		p.Hists[h.String()] = histPayload{
			Count:  s.Count,
			MeanNS: int64(s.Mean()),
			P50NS:  int64(s.Quantile(0.5)),
			P99NS:  int64(s.Quantile(0.99)),
		}
	}
	writeJSON(w, p)
}

func (r *Registry) serveTrace(w http.ResponseWriter, req *http.Request) {
	if r == nil || !r.Attached() {
		http.Error(w, "obs: registry not attached", http.StatusServiceUnavailable)
		return
	}
	max := 512
	if v := req.URL.Query().Get("max"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			max = n
		}
	}
	spans := r.RecentSpans(max)
	if req.URL.Query().Get("text") != "" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Group by machine so each timeline reads contiguously.
		byM := map[int16][]Span{}
		var ms []int16
		for _, s := range spans {
			if _, ok := byM[s.Machine]; !ok {
				ms = append(ms, s.Machine)
			}
			byM[s.Machine] = append(byM[s.Machine], s)
		}
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
		for _, m := range ms {
			fmt.Fprintf(w, "# machine %d (%d spans)\n", m, len(byM[m]))
			for _, s := range byM[m] {
				fmt.Fprintln(w, s)
			}
		}
		return
	}
	writeJSON(w, struct {
		Spans []Span `json:"spans"`
	}{spans})
}

func (r *Registry) serveAbort(w http.ResponseWriter, req *http.Request) {
	if r == nil || !r.Attached() {
		http.Error(w, "obs: registry not attached", http.StatusServiceUnavailable)
		return
	}
	d := r.LastAbort()
	if d == nil {
		http.Error(w, "obs: no abort recorded", http.StatusNotFound)
		return
	}
	writeJSON(w, d)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
