package obs

import (
	"fmt"
	"strings"
	"time"
)

// flightSpans caps how many trailing spans per machine an AbortDump keeps.
const flightSpans = 256

// AbortDump is the flight recorder's output: when a job aborts, the registry
// snapshots the most recent spans and the aborted job's counter deltas per
// machine, so the failure is diagnosable after the fact (which machine
// stalled, which link went quiet, how far the supersteps got).
type AbortDump struct {
	Job  uint64 `json:"job"`
	Name string `json:"name"`
	// Err is the abort error's message (errors don't marshal).
	Err string `json:"err"`
	// When is the wall-clock abort time.
	When time.Time `json:"when"`
	// Machines is the attached cluster size.
	Machines int `json:"machines"`
	// Counters holds the aborted job's partial counter deltas, summed
	// across machines; PerMachine has the per-machine split (nonzero only).
	Counters   map[string]int64   `json:"counters"`
	PerMachine []map[string]int64 `json:"per_machine"`
	// TrafficBytes[src][dst] is the aborted job's partial traffic matrix.
	TrafficBytes [][]int64 `json:"traffic_bytes"`
	// Spans is the flight-recorder tail: the most recent spans per machine
	// at abort time, merged and ordered by start.
	Spans []Span `json:"spans"`
}

// RecordAbort captures the flight recorder for aborted job id: the job's
// partial counters and traffic (folded into lifetime, then reset so the
// recovery run starts clean) plus the recent span tail. The dump is
// published as LastAbort and returned.
func (r *Registry) RecordAbort(id uint64, name string, err error) *AbortDump {
	if r == nil {
		return nil
	}
	st := r.state.Load()
	if st == nil {
		return nil
	}
	r.mu.Lock()
	if name == "" {
		name = r.jobName
	}
	r.jobID = 0
	r.mu.Unlock()

	d := &AbortDump{
		Job:      id,
		Name:     name,
		When:     time.Now(),
		Machines: len(st.machines),
	}
	if err != nil {
		d.Err = err.Error()
	}
	rep := &JobReport{}
	r.drainToLifetime(rep)
	d.Counters = rep.Counters
	d.PerMachine = rep.PerMachine
	d.TrafficBytes = rep.TrafficBytes
	for _, mo := range st.machines {
		d.Spans = append(d.Spans, mo.trace.tail(flightSpans)...)
	}
	sortSpans(d.Spans)
	r.aborts.Add(1)
	r.lastAbort.Store(d)
	return d
}

// LastAbort returns the most recent flight-recorder dump, or nil if no job
// has aborted under this registry.
func (r *Registry) LastAbort() *AbortDump {
	if r == nil {
		return nil
	}
	return r.lastAbort.Load()
}

// Summary renders the dump as a compact multi-line report for logs and the
// pgxd-run abort path.
func (d *AbortDump) Summary() string {
	if d == nil {
		return "obs: no abort recorded"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "abort job=%d name=%q err=%q machines=%d spans=%d\n",
		d.Job, d.Name, d.Err, d.Machines, len(d.Spans))
	for _, c := range []string{"frames_sent", "bytes_sent", "reads_served", "writes_applied", "send_errors", "recv_errors"} {
		if v := d.Counters[c]; v != 0 {
			fmt.Fprintf(&b, "  %s=%d", c, v)
		}
	}
	b.WriteByte('\n')
	// The tail of the timeline is where the failure lives; show the last
	// few non-flush spans per machine.
	const show = 4
	perM := make(map[int16][]Span, d.Machines)
	for _, s := range d.Spans {
		if s.Kind == SpanFlush || s.Kind == SpanReadRTT || s.Kind == SpanCopierServe {
			continue
		}
		perM[s.Machine] = append(perM[s.Machine], s)
	}
	for m := 0; m < d.Machines; m++ {
		spans := perM[int16(m)]
		if len(spans) > show {
			spans = spans[len(spans)-show:]
		}
		for _, s := range spans {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
