package graph

import (
	"fmt"
	"sync"
)

// Dynamic is a mutable multigraph supporting the paper's §6 dynamic-graph
// outlook: "keeping its ability to perform classical computational
// analytics by using snapshots of these graphs for algorithms which do not
// support graph updates." Mutations accumulate under a lock; Snapshot
// produces an immutable CSR Graph the engine can load.
//
// Storage is an edge multiset keyed by (src, dst) with a weight list per
// key, so multi-edges and per-edge weights survive update/remove cycles.
type Dynamic struct {
	mu       sync.RWMutex
	n        int
	edges    map[[2]NodeID][]float64
	numEdges int64
	weighted bool
	version  uint64
}

// NewDynamic creates an empty dynamic graph with n nodes.
func NewDynamic(n int) (*Dynamic, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	return &Dynamic{n: n, edges: make(map[[2]NodeID][]float64)}, nil
}

// DynamicFrom seeds a dynamic graph with an existing immutable graph.
func DynamicFrom(g *Graph) *Dynamic {
	d := &Dynamic{
		n:        g.NumNodes(),
		edges:    make(map[[2]NodeID][]float64, g.NumNodes()),
		weighted: g.Weighted(),
	}
	for u := 0; u < g.NumNodes(); u++ {
		nbrs := g.Out.Neighbors(NodeID(u))
		ws := g.Out.EdgeWeights(NodeID(u))
		for i, v := range nbrs {
			w := 0.0
			if ws != nil {
				w = ws[i]
			}
			key := [2]NodeID{NodeID(u), v}
			d.edges[key] = append(d.edges[key], w)
		}
	}
	d.numEdges = g.NumEdges()
	return d
}

// NumNodes returns the current node count.
func (d *Dynamic) NumNodes() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.n
}

// NumEdges returns the current edge count.
func (d *Dynamic) NumEdges() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.numEdges
}

// Version increases with every successful mutation batch; snapshot
// consumers use it to detect staleness.
func (d *Dynamic) Version() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.version
}

// AddNodes grows the node id space by k (new nodes start isolated).
func (d *Dynamic) AddNodes(k int) error {
	if k < 0 {
		return fmt.Errorf("graph: cannot add %d nodes", k)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n += k
	d.version++
	return nil
}

// AddEdge inserts one directed edge (weight 0).
func (d *Dynamic) AddEdge(src, dst NodeID) error {
	return d.AddWeightedEdge(src, dst, 0, false)
}

// AddWeightedEdge inserts one directed edge; weighted marks the graph as
// carrying weights from now on.
func (d *Dynamic) AddWeightedEdge(src, dst NodeID, w float64, weighted bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(src) >= d.n || int(dst) >= d.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", src, dst, d.n)
	}
	key := [2]NodeID{src, dst}
	d.edges[key] = append(d.edges[key], w)
	d.numEdges++
	if weighted {
		d.weighted = true
	}
	d.version++
	return nil
}

// RemoveEdge deletes one instance of (src, dst); with multi-edges the
// highest-weight instance goes first (deterministic). Reports whether an
// edge existed.
func (d *Dynamic) RemoveEdge(src, dst NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := [2]NodeID{src, dst}
	ws := d.edges[key]
	if len(ws) == 0 {
		return false
	}
	// Remove the max-weight instance for determinism.
	maxI := 0
	for i, w := range ws {
		if w > ws[maxI] {
			maxI = i
		}
	}
	ws[maxI] = ws[len(ws)-1]
	ws = ws[:len(ws)-1]
	if len(ws) == 0 {
		delete(d.edges, key)
	} else {
		d.edges[key] = ws
	}
	d.numEdges--
	d.version++
	return true
}

// Apply performs a batch of additions then removals atomically (all-or-
// nothing validation of the additions; removals of absent edges are counted
// but not errors). Returns how many removals matched.
func (d *Dynamic) Apply(add []Edge, remove []Edge, weighted bool) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, e := range add {
		if int(e.Src) >= d.n || int(e.Dst) >= d.n {
			return 0, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.Src, e.Dst, d.n)
		}
	}
	for _, e := range add {
		key := [2]NodeID{e.Src, e.Dst}
		d.edges[key] = append(d.edges[key], e.Weight)
		d.numEdges++
	}
	if weighted {
		d.weighted = true
	}
	matched := 0
	for _, e := range remove {
		key := [2]NodeID{e.Src, e.Dst}
		ws := d.edges[key]
		if len(ws) == 0 {
			continue
		}
		maxI := 0
		for i, w := range ws {
			if w > ws[maxI] {
				maxI = i
			}
		}
		ws[maxI] = ws[len(ws)-1]
		ws = ws[:len(ws)-1]
		if len(ws) == 0 {
			delete(d.edges, key)
		} else {
			d.edges[key] = ws
		}
		d.numEdges--
		matched++
	}
	d.version++
	return matched, nil
}

// Snapshot materializes the current state as an immutable Graph, suitable
// for loading into an engine cluster.
func (d *Dynamic) Snapshot() (*Graph, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	b := NewBuilder(d.n)
	for key, ws := range d.edges {
		for _, w := range ws {
			if d.weighted {
				b.AddWeightedEdge(key[0], key[1], w)
			} else {
				b.AddEdge(key[0], key[1])
			}
		}
	}
	return b.Build()
}
