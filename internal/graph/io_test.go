package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListTextRoundTrip(t *testing.T) {
	g, err := RMAT(8, 4, TwitterLike(), 21)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Node count may shrink if the top ids are isolated; edges must match.
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("edges = %d, want %d", back.NumEdges(), g.NumEdges())
	}
	a, b := g.EdgeList(), back.EdgeList()
	sortEdges(a)
	sortEdges(b)
	for i := range a {
		if a[i].Src != b[i].Src || a[i].Dst != b[i].Dst {
			t.Fatalf("edge %d mismatch: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEdgeListWeightedRoundTrip(t *testing.T) {
	g, err := Uniform(50, 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	g = g.WithUniformWeights(0.5, 2, 4)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Weighted() {
		t.Fatal("weights lost in round trip")
	}
	a, b := g.EdgeList(), back.EdgeList()
	sortEdges(a)
	sortEdges(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d mismatch: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# comment\n% another\n0 1\n\n1 2\n2 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Errorf("got %d/%d, want 3/3", g.NumNodes(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"too many fields": "0 1 2 3\n",
		"bad src":         "x 1\n",
		"bad dst":         "1 y\n",
		"bad weight":      "0 1 zz\n",
		"mixed weights":   "0 1\n1 2 3.5\n",
		"empty":           "# nothing\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g, err := RMAT(9, 6, WebLike(), 33)
		if err != nil {
			t.Fatal(err)
		}
		if weighted {
			g = g.WithUniformWeights(1, 5, 33)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := back.Validate(); err != nil {
			t.Fatal(err)
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("size mismatch: %d/%d vs %d/%d", back.NumNodes(), back.NumEdges(), g.NumNodes(), g.NumEdges())
		}
		// Binary preserves exact CSR layout including edge order.
		for i := range g.Out.Cols {
			if g.Out.Cols[i] != back.Out.Cols[i] {
				t.Fatalf("weighted=%v: col %d mismatch", weighted, i)
			}
		}
		if weighted {
			for i := range g.Out.Weights {
				if g.Out.Weights[i] != back.Out.Weights[i] {
					t.Fatalf("weight %d mismatch", i)
				}
			}
		}
		// The rebuilt transpose must equal the original's.
		for i := range g.In.Cols {
			if g.In.Cols[i] != back.In.Cols[i] {
				t.Fatalf("weighted=%v: transposed col %d mismatch", weighted, i)
			}
		}
	}
}

func TestBinaryRejectsBadInput(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("notmagicxxxxxxxxxxxxxxxx")); err == nil {
		t.Error("accepted bad magic")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Error("accepted empty input")
	}
	// Truncated after header.
	g, _ := Uniform(10, 20, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:40]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("accepted truncated input")
	}
}

func TestThresholdForGhostCount(t *testing.T) {
	g, err := RMAT(10, 8, TwitterLike(), 77)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []int{0, 1, 10, 100, 1000} {
		th := ThresholdForGhostCount(g, want)
		got := NodesAboveDegree(g, th)
		if got > want && want > 0 {
			t.Errorf("ghost count for target %d: got %d ghosts at threshold %d", want, got, th)
		}
		if want == 0 && got != 0 {
			t.Errorf("target 0: got %d ghosts", got)
		}
	}
	// Huge target covers all nodes: threshold 0 means all nodes with any
	// degree > 0 are ghosts.
	th := ThresholdForGhostCount(g, g.NumNodes()*2)
	if th != 0 {
		t.Errorf("threshold for unbounded ghosts = %d, want 0", th)
	}
}

func TestDegreeStatsString(t *testing.T) {
	g, err := Uniform(100, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeDegreeStats(g)
	if s.Nodes != 100 || s.Edges != 500 {
		t.Errorf("stats size: %+v", s)
	}
	if s.MeanDegree != 5 {
		t.Errorf("MeanDegree = %g, want 5", s.MeanDegree)
	}
	if str := s.String(); !strings.Contains(str, "N=100") {
		t.Errorf("String() = %q", str)
	}
}
