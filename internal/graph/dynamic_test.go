package graph

import (
	"testing"
	"testing/quick"
)

func TestDynamicBasics(t *testing.T) {
	d, err := NewDynamic(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDynamic(0); err == nil {
		t.Error("0-node dynamic accepted")
	}
	mustAdd := func(u, v NodeID) {
		t.Helper()
		if err := d.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1)
	mustAdd(1, 2)
	mustAdd(1, 2) // multi-edge
	mustAdd(3, 0)
	if d.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d", d.NumEdges())
	}
	if err := d.AddEdge(9, 0); err == nil {
		t.Error("out-of-range edge accepted")
	}

	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 || g.NumNodes() != 4 {
		t.Fatalf("snapshot %d/%d", g.NumNodes(), g.NumEdges())
	}
	if g.OutDegree(1) != 2 {
		t.Errorf("multi-edge lost: deg=%d", g.OutDegree(1))
	}

	// Remove one of the two multi-edges.
	if !d.RemoveEdge(1, 2) {
		t.Fatal("remove failed")
	}
	if d.RemoveEdge(2, 3) {
		t.Error("removed nonexistent edge")
	}
	g2, _ := d.Snapshot()
	if g2.OutDegree(1) != 1 {
		t.Errorf("after removal deg = %d", g2.OutDegree(1))
	}
	// The first snapshot is unaffected (immutability).
	if g.OutDegree(1) != 2 {
		t.Error("old snapshot mutated")
	}
}

func TestDynamicVersioning(t *testing.T) {
	d, _ := NewDynamic(3)
	v0 := d.Version()
	d.AddEdge(0, 1)
	if d.Version() == v0 {
		t.Error("version did not advance on add")
	}
	v1 := d.Version()
	d.RemoveEdge(0, 1)
	if d.Version() == v1 {
		t.Error("version did not advance on remove")
	}
	d.AddNodes(2)
	if d.NumNodes() != 5 {
		t.Errorf("NumNodes = %d", d.NumNodes())
	}
	if err := d.AddNodes(-1); err == nil {
		t.Error("negative AddNodes accepted")
	}
}

func TestDynamicFromRoundTrip(t *testing.T) {
	g, err := RMAT(8, 6, TwitterLike(), 17)
	if err != nil {
		t.Fatal(err)
	}
	wg := g.WithUniformWeights(1, 5, 17)
	d := DynamicFrom(wg)
	if d.NumNodes() != wg.NumNodes() || d.NumEdges() != wg.NumEdges() {
		t.Fatalf("size %d/%d", d.NumNodes(), d.NumEdges())
	}
	back, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	a, b := wg.EdgeList(), back.EdgeList()
	sortEdges(a)
	sortEdges(b)
	if len(a) != len(b) {
		t.Fatalf("edge counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDynamicApplyBatch(t *testing.T) {
	d, _ := NewDynamic(5)
	matched, err := d.Apply(
		[]Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}},
		[]Edge{{Src: 4, Dst: 0}}, // absent: counted as unmatched
		false)
	if err != nil {
		t.Fatal(err)
	}
	if matched != 0 || d.NumEdges() != 3 {
		t.Fatalf("matched=%d edges=%d", matched, d.NumEdges())
	}
	matched, err = d.Apply(nil, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, false)
	if err != nil || matched != 2 || d.NumEdges() != 1 {
		t.Fatalf("matched=%d edges=%d err=%v", matched, d.NumEdges(), err)
	}
	// Out-of-range addition rejects the whole batch.
	if _, err := d.Apply([]Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 99}}, nil, false); err == nil {
		t.Error("batch with invalid edge accepted")
	}
	if d.NumEdges() != 1 {
		t.Errorf("failed batch mutated graph: %d edges", d.NumEdges())
	}
}

// Property: after any mutation sequence, the snapshot's edge multiset
// matches a model map.
func TestDynamicMatchesModelProperty(t *testing.T) {
	f := func(ops []uint16, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		d, err := NewDynamic(n)
		if err != nil {
			return false
		}
		model := map[[2]NodeID]int{}
		for _, op := range ops {
			u := NodeID(int(op>>8) % n)
			v := NodeID(int(op&0xff) % n)
			if op%3 == 0 {
				if d.RemoveEdge(u, v) != (model[[2]NodeID{u, v}] > 0) {
					return false
				}
				if model[[2]NodeID{u, v}] > 0 {
					model[[2]NodeID{u, v}]--
				}
			} else {
				if d.AddEdge(u, v) != nil {
					return false
				}
				model[[2]NodeID{u, v}]++
			}
		}
		g, err := d.Snapshot()
		if err != nil {
			return false
		}
		got := map[[2]NodeID]int{}
		for u := 0; u < n; u++ {
			for _, v := range g.Out.Neighbors(NodeID(u)) {
				got[[2]NodeID{NodeID(u), v}]++
			}
		}
		if len(got) > len(model) {
			return false
		}
		for key, cnt := range model {
			if cnt != got[key] {
				return false
			}
		}
		for key, cnt := range got {
			if cnt != model[key] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDynamicWeightedRemoveOrder(t *testing.T) {
	d, _ := NewDynamic(2)
	d.AddWeightedEdge(0, 1, 5, true)
	d.AddWeightedEdge(0, 1, 1, true)
	d.AddWeightedEdge(0, 1, 3, true)
	d.RemoveEdge(0, 1) // removes weight 5
	g, _ := d.Snapshot()
	ws := append([]float64(nil), g.Out.EdgeWeights(0)...)
	if len(ws) != 2 {
		t.Fatalf("weights = %v", ws)
	}
	sum := ws[0] + ws[1]
	if sum != 4 {
		t.Errorf("remaining weights %v, want sum 4", ws)
	}
}
