package graph

import (
	"fmt"
	"runtime"
	"sync"
)

// Builder accumulates directed edges and produces an immutable Graph (both
// CSR orientations) with a counting-sort construction that is O(N + M).
// A Builder is not safe for concurrent use; generators that produce edges in
// parallel accumulate into per-worker builders and merge.
type Builder struct {
	n        int
	edges    []Edge
	weighted bool
}

// NewBuilder returns a builder for a graph with n nodes. Edges referencing
// nodes outside [0, n) cause Build to fail.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// NumNodes returns the declared node count.
func (b *Builder) NumNodes() int { return b.n }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// AddEdge records the directed edge (src, dst) with weight 0.
func (b *Builder) AddEdge(src, dst NodeID) {
	b.edges = append(b.edges, Edge{Src: src, Dst: dst})
}

// AddWeightedEdge records the directed edge (src, dst) with the given weight
// and marks the resulting graph as weighted.
func (b *Builder) AddWeightedEdge(src, dst NodeID, w float64) {
	b.weighted = true
	b.edges = append(b.edges, Edge{Src: src, Dst: dst, Weight: w})
}

// AddEdges appends a batch of edges. If markWeighted is true the resulting
// graph carries weights.
func (b *Builder) AddEdges(edges []Edge, markWeighted bool) {
	if markWeighted {
		b.weighted = true
	}
	b.edges = append(b.edges, edges...)
}

// Build constructs the Graph. The builder may be reused afterwards, but the
// produced graph does not alias the builder's storage.
func (b *Builder) Build() (*Graph, error) {
	if b.n <= 0 {
		return nil, ErrEmptyGraph
	}
	for i, e := range b.edges {
		if int(e.Src) >= b.n || int(e.Dst) >= b.n {
			return nil, fmt.Errorf("graph: edge %d (%d->%d) out of range [0,%d)", i, e.Src, e.Dst, b.n)
		}
	}
	g := &Graph{}
	buildCSR(&g.Out, b.n, b.edges, b.weighted)
	// The transpose is derived from the out-CSR (not the raw edge list) so
	// that in-neighbor lists have a canonical order: the same graph always
	// yields byte-identical CSRs regardless of how it was constructed
	// (builder, binary load, ...).
	transposeInto(&g.In, &g.Out)
	return g, nil
}

// buildCSR counting-sorts edges into CSR form under their source node.
func buildCSR(c *CSR, n int, edges []Edge, weighted bool) {
	c.N = n
	c.Rows = make([]int64, n+1)
	m := len(edges)
	c.Cols = make([]NodeID, m)
	if weighted {
		c.Weights = make([]float64, m)
	} else {
		c.Weights = nil
	}

	key := func(e Edge) NodeID { return e.Src }
	val := func(e Edge) NodeID { return e.Dst }

	// Pass 1: histogram of per-node degrees. Parallel over edge ranges when
	// the edge list is large enough to amortize the goroutine fan-out.
	const parallelThreshold = 1 << 20
	if m >= parallelThreshold {
		workers := runtime.GOMAXPROCS(0)
		partials := make([][]int64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				counts := make([]int64, n)
				lo, hi := sliceRange(m, workers, w)
				for _, e := range edges[lo:hi] {
					counts[key(e)]++
				}
				partials[w] = counts
			}(w)
		}
		wg.Wait()
		for _, counts := range partials {
			for u, cnt := range counts {
				c.Rows[u+1] += cnt
			}
		}
	} else {
		for _, e := range edges {
			c.Rows[key(e)+1]++
		}
	}

	// Prefix sum.
	for u := 0; u < n; u++ {
		c.Rows[u+1] += c.Rows[u]
	}

	// Pass 2: scatter. Sequential: the write cursor per node makes the
	// parallel variant need atomics that cost more than they save at the
	// scales this reproduction targets.
	cursor := make([]int64, n)
	copy(cursor, c.Rows[:n])
	for _, e := range edges {
		k := key(e)
		pos := cursor[k]
		cursor[k]++
		c.Cols[pos] = val(e)
		if weighted {
			c.Weights[pos] = e.Weight
		}
	}
}

// sliceRange splits length items into parts chunks and returns the half-open
// range of chunk idx. Chunks differ in size by at most one.
func sliceRange(length, parts, idx int) (int, int) {
	base := length / parts
	rem := length % parts
	lo := idx*base + min(idx, rem)
	size := base
	if idx < rem {
		size++
	}
	return lo, lo + size
}

// FromEdges is a convenience constructor: build a graph with n nodes from an
// edge slice in one call.
func FromEdges(n int, edges []Edge, weighted bool) (*Graph, error) {
	b := NewBuilder(n)
	b.AddEdges(edges, weighted)
	return b.Build()
}

// EdgeList materializes the out-orientation edge list of g. Intended for
// tests (round-trip properties) and format conversion, not hot paths.
func (g *Graph) EdgeList() []Edge {
	edges := make([]Edge, 0, g.NumEdges())
	for u := 0; u < g.NumNodes(); u++ {
		nbrs := g.Out.Neighbors(NodeID(u))
		ws := g.Out.EdgeWeights(NodeID(u))
		for i, v := range nbrs {
			e := Edge{Src: NodeID(u), Dst: v}
			if ws != nil {
				e.Weight = ws[i]
			}
			edges = append(edges, e)
		}
	}
	return edges
}
