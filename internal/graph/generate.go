package graph

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// The paper evaluates on four downloaded real-world graphs (Twitter, Web-UK,
// LiveJournal, Wikipedia) plus one synthetic Erdős–Rényi instance. Those
// downloads are multi-billion-edge and not available offline, so this
// reproduction substitutes generators that match the property each
// experiment actually exercises: the degree-distribution skew (RMAT /
// preferential attachment for the social and web graphs) and uniform
// crossing-edge probability (Erdős–Rényi for Figure 4). See DESIGN.md §5.

// RMATParams configures the recursive-matrix generator of Chakrabarti et al.
// A, B, C are the upper-left, upper-right, and lower-left quadrant
// probabilities; the lower-right is 1-A-B-C. Noise perturbs the quadrant
// probabilities per recursion level to avoid exactly self-similar artifacts.
type RMATParams struct {
	A, B, C float64
	Noise   float64
}

// TwitterLike returns RMAT parameters producing the heavy power-law skew of
// the paper's Twitter follower graph (a few vertices with enormous degree).
func TwitterLike() RMATParams { return RMATParams{A: 0.57, B: 0.19, C: 0.19, Noise: 0.05} }

// WebLike returns RMAT parameters producing the even stronger skew and
// locality of the paper's Web-UK crawl.
func WebLike() RMATParams { return RMATParams{A: 0.65, B: 0.15, C: 0.15, Noise: 0.03} }

// RMAT generates a directed RMAT graph with 2^scale nodes and approximately
// edgeFactor * 2^scale edges (duplicates and self-loops are kept, as in the
// reference generator, which mimics the multi-edges present in real crawls).
// Generation is deterministic in seed and parallel across GOMAXPROCS workers.
func RMAT(scale int, edgeFactor int, p RMATParams, seed int64) (*Graph, error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("graph: RMAT scale %d out of range [1,30]", scale)
	}
	if edgeFactor < 1 {
		return nil, fmt.Errorf("graph: RMAT edge factor %d must be >= 1", edgeFactor)
	}
	if p.A <= 0 || p.B < 0 || p.C < 0 || p.A+p.B+p.C >= 1 {
		return nil, fmt.Errorf("graph: invalid RMAT params %+v", p)
	}
	n := 1 << scale
	m := n * edgeFactor
	edges := generateParallel(m, seed, func(rng *rand.Rand, out []Edge) {
		for i := range out {
			src, dst := rmatEdge(scale, p, rng)
			out[i] = Edge{Src: src, Dst: dst}
		}
	})
	return FromEdges(n, edges, false)
}

func rmatEdge(scale int, p RMATParams, rng *rand.Rand) (NodeID, NodeID) {
	var src, dst NodeID
	a, b, c := p.A, p.B, p.C
	for level := 0; level < scale; level++ {
		// Perturb quadrant probabilities slightly per level.
		na, nb, nc := a, b, c
		if p.Noise > 0 {
			na *= 1 + p.Noise*(rng.Float64()*2-1)
			nb *= 1 + p.Noise*(rng.Float64()*2-1)
			nc *= 1 + p.Noise*(rng.Float64()*2-1)
		}
		r := rng.Float64() * (na + nb + nc + (1 - a - b - c))
		src <<= 1
		dst <<= 1
		switch {
		case r < na:
			// upper-left: no bits set
		case r < na+nb:
			dst |= 1
		case r < na+nb+nc:
			src |= 1
		default:
			src |= 1
			dst |= 1
		}
	}
	return src, dst
}

// Uniform generates an Erdős–Rényi style directed graph: m edges with
// independently uniform endpoints over n nodes. This matches the paper's
// Figure 4 instance, where "no matter how partitioned, (P-1)/P of the edges
// would remain as crossing edges for every partition".
func Uniform(n int, m int, seed int64) (*Graph, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	edges := generateParallel(m, seed, func(rng *rand.Rand, out []Edge) {
		for i := range out {
			out[i] = Edge{Src: NodeID(rng.Intn(n)), Dst: NodeID(rng.Intn(n))}
		}
	})
	return FromEdges(n, edges, false)
}

// Grid generates a rows x cols 4-neighbor mesh with bidirectional edges plus
// nShortcuts random long-range bidirectional edges. This approximates a road
// network: high diameter, near-uniform degree, so BFS/SSSP run many frontier
// steps — the regime where per-step overhead matters (paper §5.3.1).
func Grid(rows, cols, nShortcuts int, seed int64) (*Graph, error) {
	if rows <= 0 || cols <= 0 {
		return nil, ErrEmptyGraph
	}
	n := rows * cols
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	b := NewBuilder(n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
				b.AddEdge(id(r, c+1), id(r, c))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
				b.AddEdge(id(r+1, c), id(r, c))
			}
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nShortcuts; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		b.AddEdge(u, v)
		b.AddEdge(v, u)
	}
	return b.Build()
}

// PreferentialAttachment generates a Barabási–Albert style directed graph:
// nodes arrive one at a time and attach k out-edges to earlier nodes chosen
// proportionally to their current degree (implemented with the repeated-
// endpoint trick: sampling a uniform position in the edge list). The result
// has power-law in-degrees — an alternative skewed shape used by tests to
// check that partitioning quality claims are not RMAT-specific.
func PreferentialAttachment(n, k int, seed int64) (*Graph, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	if k < 1 {
		return nil, fmt.Errorf("graph: attachment degree %d must be >= 1", k)
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	// targets records every edge endpoint ever chosen; sampling uniformly
	// from it is degree-proportional sampling.
	targets := make([]NodeID, 0, 2*n*k)
	targets = append(targets, 0)
	for u := 1; u < n; u++ {
		for j := 0; j < k; j++ {
			t := targets[rng.Intn(len(targets))]
			b.AddEdge(NodeID(u), t)
			targets = append(targets, t)
		}
		targets = append(targets, NodeID(u))
	}
	return b.Build()
}

// WithUniformWeights returns a copy of g whose edges carry weights drawn
// uniformly from [lo, hi). The paper: "The SSSP algorithm uses edge weights.
// We generated these values using a uniform random distribution." The In
// orientation receives the same weight per edge as its Out counterpart.
func (g *Graph) WithUniformWeights(lo, hi float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := g.EdgeList()
	for i := range edges {
		edges[i].Weight = lo + rng.Float64()*(hi-lo)
	}
	out, err := FromEdges(g.NumNodes(), edges, true)
	if err != nil {
		// g was already a valid graph; re-building it cannot fail.
		panic(fmt.Sprintf("graph: WithUniformWeights rebuild: %v", err))
	}
	return out
}

// generateParallel fills m edges using fn on per-worker deterministic RNGs.
// The output is identical for a given (m, seed) regardless of GOMAXPROCS
// because the worker count is fixed by m, not by the machine.
func generateParallel(m int, seed int64, fn func(rng *rand.Rand, out []Edge)) []Edge {
	edges := make([]Edge, m)
	workers := runtime.GOMAXPROCS(0)
	if workers > 16 {
		workers = 16
	}
	const fixedShards = 16 // determinism: shard count never depends on GOMAXPROCS
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for s := 0; s < fixedShards; s++ {
		lo, hi := sliceRange(m, fixedShards, s)
		if lo == hi {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(s, lo, hi int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(seed + int64(s)*0x9e3779b9))
			fn(rng, edges[lo:hi])
		}(s, lo, hi)
	}
	wg.Wait()
	return edges
}
