package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the two on-disk formats the paper's Table 4 loading
// experiment distinguishes: a text edge list ("GraphX and GraphLab load from
// a text file") and a binary format ("PGX loads from a binary file format").
// Table 4's loading-time comparison is reproduced by loading the same graph
// from both formats.

// WriteEdgeList writes g as a whitespace-separated text edge list, one
// "src dst [weight]" line per edge.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	weighted := g.Weighted()
	for u := 0; u < g.NumNodes(); u++ {
		nbrs := g.Out.Neighbors(NodeID(u))
		ws := g.Out.EdgeWeights(NodeID(u))
		for i, v := range nbrs {
			var err error
			if weighted {
				_, err = fmt.Fprintf(bw, "%d %d %g\n", u, v, ws[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a text edge list. Lines starting with '#' or '%' are
// comments. The node count is one past the largest node id seen. Lines with
// a third field produce a weighted graph; mixing weighted and unweighted
// lines is an error.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	weighted := false
	maxID := NodeID(0)
	seen := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 2 or 3 fields, got %d", lineNo, len(fields))
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %v", lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %v", lineNo, err)
		}
		e := Edge{Src: NodeID(src), Dst: NodeID(dst)}
		hasW := len(fields) == 3
		if seen && hasW != weighted {
			return nil, fmt.Errorf("graph: line %d: mixed weighted and unweighted edges", lineNo)
		}
		if hasW {
			w, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", lineNo, err)
			}
			e.Weight = w
			weighted = true
		}
		seen = true
		edges = append(edges, e)
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seen {
		return nil, ErrEmptyGraph
	}
	return FromEdges(int(maxID)+1, edges, weighted)
}

// Binary format:
//
//	magic   [8]byte  "PGXDGRA1"
//	n       uint64   node count
//	m       uint64   edge count
//	flags   uint64   bit 0: weighted
//	rows    [n+1]int64          out-CSR row offsets
//	cols    [m]uint32           out-CSR neighbor ids
//	weights [m]float64          only when weighted
//
// Only the out orientation is stored; the transpose is rebuilt at load time,
// which is how the real system constructs its reverse CSR during loading.

const binaryMagic = "PGXDGRA1"

// WriteBinary writes g in the PGX.D reproduction's binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var flags uint64
	if g.Weighted() {
		flags |= 1
	}
	hdr := []uint64{uint64(g.NumNodes()), uint64(g.NumEdges()), flags}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Out.Rows); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Out.Cols); err != nil {
		return err
	}
	if g.Weighted() {
		if err := binary.Write(bw, binary.LittleEndian, g.Out.Weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph in the binary format written by WriteBinary and
// rebuilds the in-edge orientation.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var n, m, flags uint64
	for _, p := range []*uint64{&n, &m, &flags} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	const maxNodes = 1 << 31
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	if n > maxNodes {
		return nil, fmt.Errorf("graph: node count %d exceeds limit", n)
	}
	weighted := flags&1 != 0
	g := &Graph{}
	g.Out.N = int(n)
	g.Out.Rows = make([]int64, n+1)
	if err := binary.Read(br, binary.LittleEndian, g.Out.Rows); err != nil {
		return nil, err
	}
	g.Out.Cols = make([]NodeID, m)
	if err := binary.Read(br, binary.LittleEndian, g.Out.Cols); err != nil {
		return nil, err
	}
	if weighted {
		g.Out.Weights = make([]float64, m)
		if err := binary.Read(br, binary.LittleEndian, g.Out.Weights); err != nil {
			return nil, err
		}
	}
	if err := validateCSR(&g.Out, "out"); err != nil {
		return nil, err
	}
	transposeInto(&g.In, &g.Out)
	return g, nil
}

// transposeInto builds dst as the transpose of src.
func transposeInto(dst, src *CSR) {
	n := src.N
	m := src.NumEdges()
	dst.N = n
	dst.Rows = make([]int64, n+1)
	dst.Cols = make([]NodeID, m)
	if src.Weights != nil {
		dst.Weights = make([]float64, m)
	}
	for _, v := range src.Cols {
		dst.Rows[v+1]++
	}
	for u := 0; u < n; u++ {
		dst.Rows[u+1] += dst.Rows[u]
	}
	cursor := make([]int64, n)
	copy(cursor, dst.Rows[:n])
	for u := 0; u < n; u++ {
		for i := src.Rows[u]; i < src.Rows[u+1]; i++ {
			v := src.Cols[i]
			pos := cursor[v]
			cursor[v]++
			dst.Cols[pos] = NodeID(u)
			if src.Weights != nil {
				dst.Weights[pos] = src.Weights[i]
			}
		}
	}
}
