// Package graph provides the in-memory graph substrate used by the PGX.D
// reproduction: a Compressed Sparse Row (CSR) representation with its
// transpose, a bulk builder, synthetic graph generators matching the shapes
// of the paper's datasets, and simple text/binary loaders.
//
// Node identifiers are dense uint32 values in [0, NumNodes). Edge positions
// are int64 so graphs with more than 2^31 edges are representable. All types
// in this package are immutable after construction and safe for concurrent
// readers.
package graph

import (
	"errors"
	"fmt"
)

// NodeID identifies a vertex. Vertices are densely numbered from 0 to
// NumNodes-1, matching the paper's assumption that "vertices are numbered
// from 0 to N-1 by a preprocessing step".
type NodeID = uint32

// Edge is one directed edge with an optional weight. Weight is meaningful
// only for weighted algorithms (SSSP); other algorithms ignore it.
type Edge struct {
	Src    NodeID
	Dst    NodeID
	Weight float64
}

// CSR is a compressed sparse row adjacency structure. Rows has length N+1;
// the neighbors of node u are Cols[Rows[u]:Rows[u+1]]. When the CSR carries
// weights, Weights is parallel to Cols; otherwise it is nil.
type CSR struct {
	N       int
	Rows    []int64
	Cols    []NodeID
	Weights []float64
}

// NumEdges returns the number of directed edges stored in the CSR.
func (c *CSR) NumEdges() int64 {
	if c.N == 0 {
		return 0
	}
	return c.Rows[c.N]
}

// Degree returns the number of neighbors of node u.
func (c *CSR) Degree(u NodeID) int64 {
	return c.Rows[u+1] - c.Rows[u]
}

// Neighbors returns the neighbor slice of node u. The returned slice aliases
// the CSR's internal storage and must not be modified.
func (c *CSR) Neighbors(u NodeID) []NodeID {
	return c.Cols[c.Rows[u]:c.Rows[u+1]]
}

// EdgeWeights returns the weight slice parallel to Neighbors(u), or nil when
// the CSR is unweighted.
func (c *CSR) EdgeWeights(u NodeID) []float64 {
	if c.Weights == nil {
		return nil
	}
	return c.Weights[c.Rows[u]:c.Rows[u+1]]
}

// Graph is a directed graph held in both out-edge (Out) and in-edge (In)
// orientation. In is the exact transpose of Out: it contains one entry
// (v, u) for every out-edge (u, v), with the same weight. Keeping both
// orientations is what lets the engine schedule pull-mode kernels (iterate
// in-neighbors) as cheaply as push-mode kernels (iterate out-neighbors).
type Graph struct {
	Out CSR
	In  CSR
}

// NumNodes returns the number of vertices.
func (g *Graph) NumNodes() int { return g.Out.N }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int64 { return g.Out.NumEdges() }

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u NodeID) int64 { return g.Out.Degree(u) }

// InDegree returns the in-degree of u.
func (g *Graph) InDegree(u NodeID) int64 { return g.In.Degree(u) }

// TotalDegree returns in-degree + out-degree of u; this is the per-vertex
// workload weight the paper's edge partitioning balances ("the total sum of
// in-degrees and out-degrees for all vertices").
func (g *Graph) TotalDegree(u NodeID) int64 {
	return g.Out.Degree(u) + g.In.Degree(u)
}

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.Out.Weights != nil }

// Validate performs structural sanity checks and returns a descriptive error
// on the first violation. It is O(N+M) and intended for tests and loaders,
// not hot paths.
func (g *Graph) Validate() error {
	if err := validateCSR(&g.Out, "out"); err != nil {
		return err
	}
	if err := validateCSR(&g.In, "in"); err != nil {
		return err
	}
	if g.Out.N != g.In.N {
		return fmt.Errorf("graph: out has %d nodes, in has %d", g.Out.N, g.In.N)
	}
	if g.Out.NumEdges() != g.In.NumEdges() {
		return fmt.Errorf("graph: out has %d edges, in has %d", g.Out.NumEdges(), g.In.NumEdges())
	}
	return nil
}

func validateCSR(c *CSR, name string) error {
	if c.N < 0 {
		return fmt.Errorf("graph: %s CSR has negative node count %d", name, c.N)
	}
	if len(c.Rows) != c.N+1 {
		return fmt.Errorf("graph: %s CSR Rows has length %d, want %d", name, len(c.Rows), c.N+1)
	}
	if c.N > 0 && c.Rows[0] != 0 {
		return fmt.Errorf("graph: %s CSR Rows[0] = %d, want 0", name, c.Rows[0])
	}
	for i := 0; i < c.N; i++ {
		if c.Rows[i] > c.Rows[i+1] {
			return fmt.Errorf("graph: %s CSR Rows not monotone at %d: %d > %d", name, i, c.Rows[i], c.Rows[i+1])
		}
	}
	if c.N > 0 && c.Rows[c.N] != int64(len(c.Cols)) {
		return fmt.Errorf("graph: %s CSR Rows[N] = %d, want len(Cols) = %d", name, c.Rows[c.N], len(c.Cols))
	}
	for i, v := range c.Cols {
		if int(v) >= c.N {
			return fmt.Errorf("graph: %s CSR Cols[%d] = %d out of range [0,%d)", name, i, v, c.N)
		}
	}
	if c.Weights != nil && len(c.Weights) != len(c.Cols) {
		return fmt.Errorf("graph: %s CSR has %d weights for %d edges", name, len(c.Weights), len(c.Cols))
	}
	return nil
}

// ErrEmptyGraph is returned by builders and loaders when no nodes are present.
var ErrEmptyGraph = errors.New("graph: empty graph")
