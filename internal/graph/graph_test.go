package graph

import (
	"sort"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, n int, edges []Edge, weighted bool) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges, weighted)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestBuilderSmall(t *testing.T) {
	g := mustBuild(t, 4, []Edge{{0, 1, 0}, {0, 2, 0}, {1, 2, 0}, {3, 0, 0}, {2, 2, 0}}, false)
	if g.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 5 {
		t.Errorf("NumEdges = %d, want 5", g.NumEdges())
	}
	if got := g.Out.Neighbors(0); len(got) != 2 {
		t.Errorf("out-neighbors of 0 = %v, want 2 entries", got)
	}
	if got := g.In.Neighbors(2); len(got) != 3 {
		t.Errorf("in-neighbors of 2 = %v, want 3 entries", got)
	}
	if g.OutDegree(3) != 1 || g.InDegree(3) != 0 {
		t.Errorf("degrees of 3: out=%d in=%d, want 1/0", g.OutDegree(3), g.InDegree(3))
	}
	if g.TotalDegree(2) != 1+3 {
		t.Errorf("TotalDegree(2) = %d, want 4", g.TotalDegree(2))
	}
}

func TestBuilderEmpty(t *testing.T) {
	if _, err := FromEdges(0, nil, false); err != ErrEmptyGraph {
		t.Errorf("FromEdges(0) err = %v, want ErrEmptyGraph", err)
	}
	// Zero edges but positive nodes is a valid graph.
	g := mustBuild(t, 3, nil, false)
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d, want 0", g.NumEdges())
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5, 0}}, false); err == nil {
		t.Error("expected error for out-of-range dst")
	}
	if _, err := FromEdges(2, []Edge{{7, 0, 0}}, false); err == nil {
		t.Error("expected error for out-of-range src")
	}
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		if es[i].Dst != es[j].Dst {
			return es[i].Dst < es[j].Dst
		}
		return es[i].Weight < es[j].Weight
	})
}

// Property: building a CSR and reading back its edge list yields a
// permutation of the input edges.
func TestEdgeListRoundTripProperty(t *testing.T) {
	f := func(raw []uint16, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{
				Src:    NodeID(int(raw[i]) % n),
				Dst:    NodeID(int(raw[i+1]) % n),
				Weight: float64(i),
			})
		}
		g, err := FromEdges(n, edges, true)
		if err != nil {
			return false
		}
		back := g.EdgeList()
		if len(back) != len(edges) {
			return false
		}
		sortEdges(edges)
		sortEdges(back)
		for i := range edges {
			if edges[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the In CSR is the exact transpose of the Out CSR.
func TestTransposeProperty(t *testing.T) {
	f := func(raw []uint16, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{Src: NodeID(int(raw[i]) % n), Dst: NodeID(int(raw[i+1]) % n)})
		}
		g, err := FromEdges(n, edges, false)
		if err != nil {
			return false
		}
		// Collect (src,dst) pairs from Out and (dst,src) pairs from In.
		var fromOut, fromIn []Edge
		for u := 0; u < n; u++ {
			for _, v := range g.Out.Neighbors(NodeID(u)) {
				fromOut = append(fromOut, Edge{Src: NodeID(u), Dst: v})
			}
			for _, v := range g.In.Neighbors(NodeID(u)) {
				fromIn = append(fromIn, Edge{Src: v, Dst: NodeID(u)})
			}
		}
		sortEdges(fromOut)
		sortEdges(fromIn)
		if len(fromOut) != len(fromIn) {
			return false
		}
		for i := range fromOut {
			if fromOut[i] != fromIn[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := mustBuild(t, 3, []Edge{{0, 1, 0}, {1, 2, 0}}, false)
	g.Out.Cols[0] = 99
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted out-of-range neighbor")
	}
	g = mustBuild(t, 3, []Edge{{0, 1, 0}, {1, 2, 0}}, false)
	g.Out.Rows[1] = 5
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted non-monotone rows")
	}
}

func TestSliceRange(t *testing.T) {
	for _, tc := range []struct{ length, parts int }{{10, 3}, {0, 4}, {7, 7}, {5, 8}, {100, 1}} {
		covered := 0
		prevHi := 0
		for i := 0; i < tc.parts; i++ {
			lo, hi := sliceRange(tc.length, tc.parts, i)
			if lo != prevHi {
				t.Errorf("sliceRange(%d,%d,%d) lo=%d, want %d", tc.length, tc.parts, i, lo, prevHi)
			}
			if hi < lo {
				t.Errorf("sliceRange(%d,%d,%d) hi<lo", tc.length, tc.parts, i)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.length || prevHi != tc.length {
			t.Errorf("sliceRange(%d,%d) covered %d ending at %d", tc.length, tc.parts, covered, prevHi)
		}
	}
}

func TestRMATDeterministicAndSized(t *testing.T) {
	g1, err := RMAT(10, 8, TwitterLike(), 42)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RMAT(10, 8, TwitterLike(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != 1024 || g1.NumEdges() != 1024*8 {
		t.Errorf("size = %d/%d, want 1024/8192", g1.NumNodes(), g1.NumEdges())
	}
	for i := range g1.Out.Cols {
		if g1.Out.Cols[i] != g2.Out.Cols[i] {
			t.Fatalf("RMAT not deterministic at edge %d", i)
		}
	}
	g3, err := RMAT(10, 8, TwitterLike(), 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range g1.Out.Cols {
		if g1.Out.Cols[i] != g3.Out.Cols[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical RMAT graphs")
	}
}

func TestRMATRejectsBadParams(t *testing.T) {
	if _, err := RMAT(0, 8, TwitterLike(), 1); err == nil {
		t.Error("accepted scale 0")
	}
	if _, err := RMAT(10, 0, TwitterLike(), 1); err == nil {
		t.Error("accepted edge factor 0")
	}
	if _, err := RMAT(10, 8, RMATParams{A: 0.5, B: 0.3, C: 0.3}, 1); err == nil {
		t.Error("accepted params summing past 1")
	}
}

func TestRMATIsSkewedUniformIsNot(t *testing.T) {
	rmat, err := RMAT(12, 16, TwitterLike(), 7)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Uniform(1<<12, 16<<12, 7)
	if err != nil {
		t.Fatal(err)
	}
	sr := ComputeDegreeStats(rmat)
	su := ComputeDegreeStats(uni)
	if sr.Gini <= su.Gini {
		t.Errorf("RMAT gini %.3f should exceed uniform gini %.3f", sr.Gini, su.Gini)
	}
	if sr.Gini < 0.5 {
		t.Errorf("Twitter-like RMAT gini %.3f, want >= 0.5 (heavy skew)", sr.Gini)
	}
	if su.Gini > 0.35 {
		t.Errorf("uniform gini %.3f, want <= 0.35", su.Gini)
	}
	if sr.P99Share < 2*su.P99Share {
		t.Errorf("RMAT top-1%% share %.3f not clearly above uniform %.3f", sr.P99Share, su.P99Share)
	}
}

func TestUniformShape(t *testing.T) {
	g, err := Uniform(1000, 35000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1000 || g.NumEdges() != 35000 {
		t.Fatalf("size = %d/%d", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGridShape(t *testing.T) {
	g, err := Grid(20, 30, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 600 {
		t.Fatalf("NumNodes = %d, want 600", g.NumNodes())
	}
	// Mesh edges: 2*(rows*(cols-1) + cols*(rows-1)) + 2*shortcuts.
	want := int64(2*(20*29+30*19) + 2*10)
	if g.NumEdges() != want {
		t.Errorf("NumEdges = %d, want %d", g.NumEdges(), want)
	}
	// Grid should have much higher effective diameter than RMAT of equal size.
	rmat, err := RMAT(10, 4, TwitterLike(), 5)
	if err != nil {
		t.Fatal(err)
	}
	dg := EffectiveDiameterSample(g, 5, 1)
	dr := EffectiveDiameterSample(rmat, 5, 1)
	if dg <= dr {
		t.Errorf("grid diameter %.0f should exceed RMAT diameter %.0f", dg, dr)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g, err := PreferentialAttachment(2000, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != int64((2000-1)*4) {
		t.Errorf("NumEdges = %d, want %d", g.NumEdges(), (2000-1)*4)
	}
	s := ComputeDegreeStats(g)
	if s.Gini < 0.3 {
		t.Errorf("preferential attachment gini %.3f, want >= 0.3", s.Gini)
	}
	if _, err := PreferentialAttachment(10, 0, 1); err == nil {
		t.Error("accepted k=0")
	}
}

func TestWithUniformWeights(t *testing.T) {
	g, err := Uniform(100, 1000, 9)
	if err != nil {
		t.Fatal(err)
	}
	wg := g.WithUniformWeights(1, 10, 9)
	if !wg.Weighted() {
		t.Fatal("weighted graph reports unweighted")
	}
	if err := wg.Validate(); err != nil {
		t.Fatal(err)
	}
	if wg.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", wg.NumEdges(), g.NumEdges())
	}
	for u := 0; u < wg.NumNodes(); u++ {
		for _, w := range wg.Out.EdgeWeights(NodeID(u)) {
			if w < 1 || w >= 10 {
				t.Fatalf("weight %g out of [1,10)", w)
			}
		}
	}
	// In-orientation weights must match out-orientation per edge: check total.
	var sumOut, sumIn float64
	for _, w := range wg.Out.Weights {
		sumOut += w
	}
	for _, w := range wg.In.Weights {
		sumIn += w
	}
	if diff := sumOut - sumIn; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("weight sums differ: out=%g in=%g", sumOut, sumIn)
	}
}
