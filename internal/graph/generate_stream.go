package graph

import (
	"fmt"
	"math/rand"
)

// GenStream is a re-runnable, bounded-memory view of a deterministic
// generator: Sweep replays the 16 fixed shards of generateParallel
// sequentially (same per-shard RNG seeding, same slice order), so every
// sweep emits exactly the edge sequence the in-memory generator would
// materialize — in the same order — while holding only a small scratch
// buffer. This is what lets the out-of-core store writer emit CSR v2 files
// for graphs that would not fit in memory (store.WriteStream).
type GenStream struct {
	n    int
	m    int
	seed int64
	fill func(rng *rand.Rand, out []Edge)
}

// NumNodes returns the stream's node count.
func (s *GenStream) NumNodes() int { return s.n }

// NumEdges returns the stream's directed edge count.
func (s *GenStream) NumEdges() int { return s.m }

// Weighted reports whether Sweep emits meaningful weights (generator
// streams are unweighted).
func (s *GenStream) Weighted() bool { return false }

// Sweep emits every edge in the generator's deterministic order. Stable
// across calls: shard s always re-seeds rand.NewSource(seed + s*0x9e3779b9),
// exactly as generateParallel does, and shards replay in index order — the
// order the parallel generator's output slice concatenates them.
func (s *GenStream) Sweep(emit func(u, v uint32, w float64)) {
	const fixedShards = 16 // must match generateParallel
	const chunk = 1 << 16
	buf := make([]Edge, chunk)
	for sh := 0; sh < fixedShards; sh++ {
		lo, hi := sliceRange(s.m, fixedShards, sh)
		if lo == hi {
			continue
		}
		rng := rand.New(rand.NewSource(s.seed + int64(sh)*0x9e3779b9))
		for at := lo; at < hi; at += chunk {
			cn := hi - at
			if cn > chunk {
				cn = chunk
			}
			out := buf[:cn]
			s.fill(rng, out)
			for _, e := range out {
				emit(uint32(e.Src), uint32(e.Dst), e.Weight)
			}
		}
	}
}

// RMATStream returns the streaming equivalent of RMAT: same parameters,
// same seed, same edges in the same order.
func RMATStream(scale int, edgeFactor int, p RMATParams, seed int64) (*GenStream, error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("graph: RMAT scale %d out of range [1,30]", scale)
	}
	if edgeFactor < 1 {
		return nil, fmt.Errorf("graph: RMAT edge factor %d must be >= 1", edgeFactor)
	}
	if p.A <= 0 || p.B < 0 || p.C < 0 || p.A+p.B+p.C >= 1 {
		return nil, fmt.Errorf("graph: invalid RMAT params %+v", p)
	}
	n := 1 << scale
	return &GenStream{n: n, m: n * edgeFactor, seed: seed, fill: func(rng *rand.Rand, out []Edge) {
		for i := range out {
			src, dst := rmatEdge(scale, p, rng)
			out[i] = Edge{Src: src, Dst: dst}
		}
	}}, nil
}

// UniformStream returns the streaming equivalent of Uniform.
func UniformStream(n, m int, seed int64) (*GenStream, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	return &GenStream{n: n, m: m, seed: seed, fill: func(rng *rand.Rand, out []Edge) {
		for i := range out {
			out[i] = Edge{Src: NodeID(rng.Intn(n)), Dst: NodeID(rng.Intn(n))}
		}
	}}, nil
}
