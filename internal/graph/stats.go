package graph

import (
	"fmt"
	"math"
	"sort"
)

// DegreeStats summarizes a graph's degree distribution. The paper's load
// balance and ghosting claims are all functions of this distribution
// ("real-world graphs have high skewness in their degree distribution"), so
// the harness prints it next to every experiment to show the synthetic
// stand-ins match the intended shape.
type DegreeStats struct {
	Nodes        int
	Edges        int64
	MaxInDegree  int64
	MaxOutDegree int64
	MeanDegree   float64 // mean out-degree
	// Gini is the Gini coefficient of total degree: 0 = perfectly uniform,
	// →1 = all edges on one vertex. Erdős–Rényi graphs land near 0.1-0.2;
	// Twitter-shaped RMAT graphs exceed 0.6.
	Gini float64
	// P99Share is the fraction of all edge endpoints held by the top 1% of
	// vertices by total degree — the quantity selective ghosting exploits.
	P99Share float64
}

// ComputeDegreeStats scans g once and returns its degree summary.
func ComputeDegreeStats(g *Graph) DegreeStats {
	n := g.NumNodes()
	s := DegreeStats{Nodes: n, Edges: g.NumEdges()}
	if n == 0 {
		return s
	}
	total := make([]int64, n)
	var sum int64
	for u := 0; u < n; u++ {
		in := g.InDegree(NodeID(u))
		out := g.OutDegree(NodeID(u))
		if in > s.MaxInDegree {
			s.MaxInDegree = in
		}
		if out > s.MaxOutDegree {
			s.MaxOutDegree = out
		}
		total[u] = in + out
		sum += total[u]
	}
	s.MeanDegree = float64(g.NumEdges()) / float64(n)
	if sum == 0 {
		return s
	}
	sort.Slice(total, func(i, j int) bool { return total[i] < total[j] })
	// Gini via the sorted-index formula: G = (2*sum(i*x_i))/(n*sum(x)) - (n+1)/n.
	var weighted float64
	for i, d := range total {
		weighted += float64(i+1) * float64(d)
	}
	s.Gini = 2*weighted/(float64(n)*float64(sum)) - float64(n+1)/float64(n)
	if s.Gini < 0 {
		s.Gini = 0
	}
	top := n / 100
	if top < 1 {
		top = 1
	}
	var topSum int64
	for i := n - top; i < n; i++ {
		topSum += total[i]
	}
	s.P99Share = float64(topSum) / float64(sum)
	return s
}

// String renders the stats on one line for harness output.
func (s DegreeStats) String() string {
	return fmt.Sprintf("N=%d M=%d meanDeg=%.1f maxIn=%d maxOut=%d gini=%.2f top1%%share=%.2f",
		s.Nodes, s.Edges, s.MeanDegree, s.MaxInDegree, s.MaxOutDegree, s.Gini, s.P99Share)
}

// NodesAboveDegree returns how many nodes have in-degree or out-degree
// strictly greater than threshold — i.e. how many ghosts selective ghosting
// would create at that threshold (paper §3.3: "creates a ghost if either
// degree is larger than the specified threshold value").
func NodesAboveDegree(g *Graph, threshold int64) int {
	count := 0
	for u := 0; u < g.NumNodes(); u++ {
		if g.InDegree(NodeID(u)) > threshold || g.OutDegree(NodeID(u)) > threshold {
			count++
		}
	}
	return count
}

// ThresholdForGhostCount returns the smallest degree threshold that yields at
// most maxGhosts ghost nodes. Figure 6a sweeps ghost counts; this inverts
// the threshold→count mapping so the harness can sweep counts directly.
func ThresholdForGhostCount(g *Graph, maxGhosts int) int64 {
	if maxGhosts <= 0 {
		// Threshold above every degree: no ghosts.
		max := s64max(ComputeDegreeStats(g).MaxInDegree, ComputeDegreeStats(g).MaxOutDegree)
		return max
	}
	degrees := make([]int64, 0, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		degrees = append(degrees, s64max(g.InDegree(NodeID(u)), g.OutDegree(NodeID(u))))
	}
	sort.Slice(degrees, func(i, j int) bool { return degrees[i] > degrees[j] })
	if maxGhosts >= len(degrees) {
		return 0
	}
	// Nodes with max-degree > t become ghosts; pick t = degree of the
	// (maxGhosts+1)-th node so at most maxGhosts nodes exceed it.
	return degrees[maxGhosts]
}

func s64max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// EffectiveDiameterSample estimates the 90th-percentile BFS eccentricity from
// nSamples random sources (deterministic in seed). Used by tests to verify
// the grid generator produces high-diameter road-like graphs and RMAT
// produces small-world ones.
func EffectiveDiameterSample(g *Graph, nSamples int, seed int64) float64 {
	n := g.NumNodes()
	if n == 0 || nSamples <= 0 {
		return 0
	}
	var eccs []float64
	state := uint64(seed)*2862933555777941757 + 3037000493
	for i := 0; i < nSamples; i++ {
		state = state*2862933555777941757 + 3037000493
		src := NodeID(state % uint64(n))
		ecc := bfsEccentricity(g, src)
		if ecc >= 0 {
			eccs = append(eccs, float64(ecc))
		}
	}
	if len(eccs) == 0 {
		return 0
	}
	sort.Float64s(eccs)
	idx := int(math.Ceil(0.9*float64(len(eccs)))) - 1
	if idx < 0 {
		idx = 0
	}
	return eccs[idx]
}

// bfsEccentricity returns the max hop distance reachable from src, or -1 if
// src has no out-edges.
func bfsEccentricity(g *Graph, src NodeID) int {
	if g.OutDegree(src) == 0 {
		return -1
	}
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []NodeID{src}
	depth := 0
	for len(frontier) > 0 {
		var next []NodeID
		for _, u := range frontier {
			for _, v := range g.Out.Neighbors(u) {
				if dist[v] < 0 {
					dist[v] = int32(depth + 1)
					next = append(next, v)
				}
			}
		}
		if len(next) > 0 {
			depth++
		}
		frontier = next
	}
	return depth
}
