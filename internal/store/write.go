package store

import (
	"bufio"
	"fmt"
	"math"
	"os"

	"repro/internal/graph"
	"repro/internal/partition"
)

// WriteGraph materializes g as a CSR v2 file partitioned for p machines
// under the edge-balanced strategy — the same cut Cluster.Load computes, so
// a cluster loading the file and a cluster loading g in memory (with
// ghosting disabled) own identical vertex ranges and iterate identical ref
// sequences.
func WriteGraph(path string, g *graph.Graph, p int) error {
	layout, err := partition.Compute(g, p, partition.EdgeBalanced)
	if err != nil {
		return err
	}
	return WriteGraphLayout(path, g, layout)
}

// WriteGraphLayout materializes g as a CSR v2 file under an explicit
// ownership layout. Refs are written ghost-free: owned neighbors as local
// indices, everything else as packed remote (machine, offset) — per-row
// neighbor order is exactly the in-memory CSR's, so kernels consuming either
// representation reduce in the same order and produce bit-identical floats.
func WriteGraphLayout(path string, g *graph.Graph, layout partition.Layout) error {
	n := g.NumNodes()
	if n == 0 {
		return graph.ErrEmptyGraph
	}
	if int(layout.Starts[layout.NumMachines]) != n {
		return fmt.Errorf("store: layout covers %d nodes, graph has %d", layout.Starts[layout.NumMachines], n)
	}
	p := layout.NumMachines
	weighted := g.Out.Weights != nil

	// Section sizes are fully determined by the layout and the global rows,
	// so offsets are computable before writing a byte and the body streams
	// sequentially.
	lay := newFileLayout(n, g.NumEdges(), p, weighted, layout.Starts,
		func(m int) int64 {
			lo, hi := layout.Range(m)
			return g.Out.Rows[hi] - g.Out.Rows[lo]
		},
		func(m int) int64 {
			lo, hi := layout.Range(m)
			return g.In.Rows[hi] - g.In.Rows[lo]
		})

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.Write(lay.headerBytes()); err != nil {
		return err
	}
	var scratch [8]byte
	putI64 := func(v int64) error {
		putU64(scratch[:], uint64(v))
		_, err := w.Write(scratch[:])
		return err
	}
	for m := 0; m < p; m++ {
		lo, hi := layout.Range(m)
		for _, csr := range []*graph.CSR{&g.Out, &g.In} {
			base := csr.Rows[lo]
			// Rebased rows.
			for u := lo; u <= hi; u++ {
				if err := putI64(csr.Rows[u] - base); err != nil {
					return err
				}
			}
			// Refs.
			for i := base; i < csr.Rows[hi]; i++ {
				if err := putI64(encodeRef(csr.Cols[i], layout, m, lo, hi)); err != nil {
					return err
				}
			}
			// Weights.
			if weighted {
				for i := base; i < csr.Rows[hi]; i++ {
					putU64(scratch[:], math.Float64bits(csr.Weights[i]))
					if _, err := w.Write(scratch[:]); err != nil {
						return err
					}
				}
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

// encodeRef resolves global neighbor v into machine me's ghost-free ref
// encoding. [lo, hi) is me's owned range, passed in so the hot loop skips
// the layout binary search for local neighbors.
func encodeRef(v graph.NodeID, layout partition.Layout, me int, lo, hi graph.NodeID) int64 {
	if v >= lo && v < hi {
		return int64(v - lo)
	}
	owner := layout.Owner(v)
	return packRemoteRef(owner, uint32(v-layout.Starts[owner]))
}

// fileLayout precomputes every section offset of a CSR v2 file.
type fileLayout struct {
	n        int
	m        int64
	p        int
	weighted bool
	starts   []uint32

	// Per machine: absolute offsets of outRows, outRefs, outWeights, inRows,
	// inRefs, inWeights (weight slots 0 when unweighted), plus edge counts.
	offs      [][secFieldCount]int64
	mOut, mIn []int64
	total     int64
}

func newFileLayout(n int, m int64, p int, weighted bool, starts []uint32, outEdges, inEdges func(int) int64) *fileLayout {
	lay := &fileLayout{n: n, m: m, p: p, weighted: weighted, starts: starts,
		offs: make([][secFieldCount]int64, p), mOut: make([]int64, p), mIn: make([]int64, p)}
	at := dataOffset(p)
	for mach := 0; mach < p; mach++ {
		numLocal := int64(starts[mach+1] - starts[mach])
		mo, mi := outEdges(mach), inEdges(mach)
		lay.mOut[mach], lay.mIn[mach] = mo, mi
		o := &lay.offs[mach]
		o[0] = at
		at += 8 * (numLocal + 1)
		o[1] = at
		at += 8 * mo
		if weighted {
			o[2] = at
			at += 8 * mo
		}
		o[3] = at
		at += 8 * (numLocal + 1)
		o[4] = at
		at += 8 * mi
		if weighted {
			o[5] = at
			at += 8 * mi
		}
	}
	lay.total = at
	return lay
}

// headerBytes renders the fixed prelude, starts array, and section table.
func (lay *fileLayout) headerBytes() []byte {
	buf := make([]byte, dataOffset(lay.p))
	copy(buf, Magic)
	putU32(buf[8:], Version)
	var flags uint32
	if lay.weighted {
		flags |= FlagWeighted
	}
	putU32(buf[12:], flags)
	putU64(buf[16:], uint64(lay.n))
	putU64(buf[24:], uint64(lay.m))
	putU64(buf[32:], uint64(lay.p))
	for i, s := range lay.starts {
		putU32(buf[headerFixedBytes+4*i:], s)
	}
	tbl := tableOffset(lay.p)
	for mach := 0; mach < lay.p; mach++ {
		for f := 0; f < secFieldCount; f++ {
			putU64(buf[tbl+int64(8*(secFieldCount*mach+f)):], uint64(lay.offs[mach][f]))
		}
	}
	return buf
}
