package store

import (
	"fmt"
	"os"
	"path/filepath"
	"unsafe"

	"repro/internal/codec"
	"repro/internal/graph"
)

// CompressFile rewrites the raw CSR v2 file at src as a compressed v3 file
// at dst. The pass is sequential and runs in O(nodes + block) memory: rows
// and the block index are per-section metadata, refs stream block by block
// through a bounded encode buffer, and weights copy through unchanged. Since
// a v3 file's section offsets depend on the encoded sizes, the header and
// per-blob sub-headers are written as placeholders and patched once the
// sizes are known.
func CompressFile(dst, src string) error {
	sf, err := Open(src)
	if err != nil {
		return err
	}
	defer sf.Close()
	return compressOpen(dst, sf)
}

func compressOpen(dst string, sf *File) error {
	if sf.Compressed() {
		return fmt.Errorf("store: %s is already compressed", sf.Path())
	}
	f, err := os.Create(dst)
	if err != nil {
		return err
	}
	defer f.Close()
	p := sf.hdr.p
	weighted := sf.Weighted()

	headerLen := dataOffset(p)
	if _, err := f.Write(make([]byte, headerLen)); err != nil {
		return err
	}
	at := headerLen
	table := make([][secFieldCount]int64, p)
	cw := &compWriter{f: f}
	// The ref walk below reads the whole source mapping once, front to back.
	advise(sf.data, advSequential)
	for mach := 0; mach < p; mach++ {
		sec := sf.Section(mach)
		lo := int64(sf.starts[mach])
		for orient := 0; orient < 2; orient++ {
			rows, refs, ws := sec.OutRows, sec.OutRefs, sec.OutWeights
			blobF, wF := 0, 2
			if orient == OrientIn {
				rows, refs, ws = sec.InRows, sec.InRefs, sec.InWeights
				blobF, wF = 3, 5
			}
			blobLen, err := cw.writeBlob(sf, rows, refs, lo, at)
			if err != nil {
				return err
			}
			table[mach][blobF] = at
			table[mach][blobF+1] = blobLen
			at += blobLen
			if weighted {
				table[mach][wF] = at
				if len(ws) > 0 {
					raw := unsafe.Slice((*byte)(unsafe.Pointer(&ws[0])), 8*len(ws))
					if _, err := f.Write(raw); err != nil {
						return err
					}
				}
				at += 8 * int64(len(ws))
			}
		}
	}
	advise(sf.data, advDontNeed)

	// Patch the header now that every section offset is known.
	hdr := make([]byte, headerLen)
	copy(hdr, Magic)
	putU32(hdr[8:], Version3)
	flags := FlagCompressedEdges
	if weighted {
		flags |= FlagWeighted
	}
	putU32(hdr[12:], flags)
	putU64(hdr[16:], sf.hdr.numNodes)
	putU64(hdr[24:], sf.hdr.numEdges)
	putU64(hdr[32:], uint64(p))
	for i, s := range sf.starts {
		putU32(hdr[headerFixedBytes+4*i:], s)
	}
	tbl := tableOffset(p)
	for mach := 0; mach < p; mach++ {
		for fi := 0; fi < secFieldCount; fi++ {
			putU64(hdr[tbl+int64(8*(secFieldCount*mach+fi)):], uint64(table[mach][fi]))
		}
	}
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return err
	}
	return f.Sync()
}

// compWriter carries the encode scratch reused across sections.
type compWriter struct {
	f    *os.File
	buf  []byte  // encode buffer, flushed when it grows past a block's worth
	vals []int64 // one row's global ids
}

// writeBlob encodes one orientation's rows+refs as a v3 blob starting at
// file offset blobOff (the current write position) and returns its padded
// length. Writes are sequential except two patches: the sub-header's
// refBytes and the block index, both at offsets known up front.
func (cw *compWriter) writeBlob(sf *File, rows, refs []int64, secLo, blobOff int64) (int64, error) {
	numLocal := int64(len(rows)) - 1
	edges := rows[numLocal]

	// compRows: degree uvarints.
	rowBlob := cw.buf[:0]
	for u := int64(0); u < numLocal; u++ {
		rowBlob = codec.AppendUvarint(rowBlob, uint64(rows[u+1]-rows[u]))
	}
	rowBytes := int64(len(rowBlob))
	for int64(len(rowBlob)) < pad8(rowBytes) {
		rowBlob = append(rowBlob, 0)
	}

	// Block boundaries: whole rows, close at >= target edges, zero-degree
	// tails fold into the last block.
	var firstRow []int64
	if edges > 0 {
		inBlock := int64(0)
		firstRow = append(firstRow, 0)
		for u := int64(0); u < numLocal; u++ {
			deg := rows[u+1] - rows[u]
			if inBlock >= v3BlockTargetEdges && deg > 0 {
				firstRow = append(firstRow, u)
				inBlock = 0
			}
			inBlock += deg
		}
	}
	blockCount := int64(len(firstRow))
	firstRow = append(firstRow, numLocal)

	// Placeholder sub-header + compRows + placeholder index.
	var sub [v3BlobHeaderBytes]byte
	putU64(sub[0:], uint64(rowBytes))
	putU64(sub[8:], uint64(blockCount))
	if _, err := cw.f.Write(sub[:]); err != nil {
		return 0, err
	}
	if _, err := cw.f.Write(rowBlob); err != nil {
		return 0, err
	}
	idxOff := blobOff + v3BlobHeaderBytes + pad8(rowBytes)
	idx := make([]byte, 16*(blockCount+1))
	if _, err := cw.f.Write(idx); err != nil {
		return 0, err
	}

	// compRefs, block by block through the bounded buffer.
	offs := make([]int64, blockCount+1)
	cw.buf = cw.buf[:0]
	var refBytes int64
	for b := int64(0); b < blockCount; b++ {
		offs[b] = refBytes
		start := len(cw.buf)
		for u := firstRow[b]; u < firstRow[b+1]; u++ {
			row := refs[rows[u]:rows[u+1]]
			cw.vals = cw.vals[:0]
			for _, ref := range row {
				cw.vals = append(cw.vals, sf.globalFromRef(ref, secLo))
			}
			cw.buf = codec.AppendZigZagDeltaRow(cw.buf, cw.vals)
		}
		refBytes += int64(len(cw.buf) - start)
		if len(cw.buf) >= 1<<20 {
			if _, err := cw.f.Write(cw.buf); err != nil {
				return 0, err
			}
			cw.buf = cw.buf[:0]
		}
	}
	offs[blockCount] = refBytes
	for pad := refBytes; pad < pad8(refBytes); pad++ {
		cw.buf = append(cw.buf, 0)
	}
	if len(cw.buf) > 0 {
		if _, err := cw.f.Write(cw.buf); err != nil {
			return 0, err
		}
		cw.buf = cw.buf[:0]
	}

	// Patch refBytes and the index.
	putU64(sub[16:], uint64(refBytes))
	if _, err := cw.f.WriteAt(sub[:], blobOff); err != nil {
		return 0, err
	}
	for b := int64(0); b <= blockCount; b++ {
		putU64(idx[16*b:], uint64(firstRow[b]))
		putU64(idx[16*b+8:], uint64(offs[b]))
	}
	if _, err := cw.f.WriteAt(idx, idxOff); err != nil {
		return 0, err
	}
	return v3BlobHeaderBytes + pad8(rowBytes) + 16*(blockCount+1) + pad8(refBytes), nil
}

// globalFromRef inverts the section's ref encoding back to a global node id
// (store files are ghost-free, so every ref is invertible).
func (sf *File) globalFromRef(ref, secLo int64) int64 {
	if ref >= 0 {
		return secLo + ref
	}
	rm, off := unpackRemoteRef(ref)
	return int64(sf.starts[rm]) + int64(off)
}

// WriteGraphCompressed materializes g as a compressed CSR v3 file
// partitioned for p machines: a raw v2 twin is written to a temp file next
// to path and compressed through CompressFile, preserving WriteGraph's
// bit-identity contract (per-row neighbor order survives the codec round
// trip exactly).
func WriteGraphCompressed(path string, g *graph.Graph, p int) error {
	tmp, err := rawTemp(path)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) //nolint:errcheck
	if err := WriteGraph(tmp, g, p); err != nil {
		return err
	}
	return CompressFile(path, tmp)
}

// rawTemp creates an empty temp file next to path for the raw intermediate.
func rawTemp(path string) (string, error) {
	dir := filepath.Dir(path)
	tf, err := os.CreateTemp(dir, ".pgxd-raw-*.csr2")
	if err != nil {
		return "", err
	}
	name := tf.Name()
	tf.Close() //nolint:errcheck
	return name, nil
}
