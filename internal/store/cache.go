package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// DefaultDecodeCacheBytes is the decode-cache budget used when a compressed
// file is loaded without an explicit Config.DecodeCacheBytes.
const DefaultDecodeCacheBytes int64 = 64 << 20

// AnonAlloc reserves size bytes of anonymous memory outside the Go heap
// (mmap MAP_ANON where available, a heap slice elsewhere) and returns the
// buffer plus its release function. Pages materialize on first touch and an
// madvise(DONTNEED) returns them to the kernel without unmapping — which is
// how the engine keeps big transient arrays (decode arenas, property
// columns of out-of-core runs) out of both the Go GC's and the residency
// window's way.
func AnonAlloc(size int64) ([]byte, func() error, error) { return anonAlloc(size) }

// DecodeCache inflates a compressed file's edge blocks on demand into
// per-section anonymous arenas, bounded by a byte budget. Each (machine,
// orientation) arena is a full-length []int64 view sized to the section's
// edge count, so the engine indexes decoded refs absolutely — jr.refs[e] —
// exactly as it indexes a raw v2 mapping; only the claim/release hooks know
// blocks exist. The address space is reserved up front but pages materialize
// only when a block decodes; eviction returns a cold block's interior pages
// to the kernel (madvise DONTNEED) and marks it for re-decode.
//
// The cache is a singleton per File (EnsureDecodeCache), shared by every
// cluster loaded over the same file, so hot blocks decode once and are
// reused across supersteps and across same-graph pool jobs.
//
// Locking: mu guards all pin/decoded/LRU/accounting state; each block's own
// mutex serializes its decode outside mu, so a large decode never stalls
// unrelated claims. Pinned blocks are never evicted — a claim pins before it
// reads and may push used past the budget transiently.
type DecodeCache struct {
	sf     *File
	budget int64 // <= 0: unbounded

	mu     sync.Mutex
	used   int64
	lru    blockList
	arenas [][2]*arena

	hits, misses, decodedBytes, evictedBytes atomic.Int64
}

// DecodeCacheStats is a point-in-time counter snapshot.
type DecodeCacheStats struct {
	Hits         int64
	Misses       int64
	DecodedBytes int64
	EvictedBytes int64
	UsedBytes    int64
	PinnedBlocks int64
}

// arena is one section-orientation's decode target.
type arena struct {
	mach, orient int
	buf          []byte
	refs         []int64
	freeFn       func() error
	blocks       []blockState
}

// blockState tracks one edge block's residency in its arena.
type blockState struct {
	mu      sync.Mutex // serializes the decode itself
	a       *arena
	lo, hi  int64 // byte range in the arena
	decoded bool
	pins    int32
	prev    *blockState // LRU links, valid while decoded
	next    *blockState
}

func (bs *blockState) bytes() int64 { return bs.hi - bs.lo }

// blockList is an intrusive LRU list; head.next is most recent.
type blockList struct{ head blockState }

func (l *blockList) init() { l.head.prev, l.head.next = &l.head, &l.head }
func (l *blockList) remove(bs *blockState) {
	bs.prev.next, bs.next.prev = bs.next, bs.prev
	bs.prev, bs.next = nil, nil
}
func (l *blockList) pushFront(bs *blockState) {
	bs.prev, bs.next = &l.head, l.head.next
	l.head.next.prev = bs
	l.head.next = bs
}
func (l *blockList) moveToFront(bs *blockState) {
	l.remove(bs)
	l.pushFront(bs)
}

// EnsureDecodeCache returns the file's decode cache, creating it with the
// given budget on first call (later budgets are ignored — the cache is
// shared). Only compressed files carry one.
func (sf *File) EnsureDecodeCache(budgetBytes int64) (*DecodeCache, error) {
	if !sf.Compressed() {
		return nil, fmt.Errorf("store: %s is not a compressed file", sf.path)
	}
	sf.cacheMu.Lock()
	defer sf.cacheMu.Unlock()
	if sf.cache != nil {
		return sf.cache, nil
	}
	dc := &DecodeCache{sf: sf, budget: budgetBytes}
	dc.lru.init()
	dc.arenas = make([][2]*arena, sf.hdr.p)
	for mach := 0; mach < sf.hdr.p; mach++ {
		for orient := 0; orient < 2; orient++ {
			o := &sf.v3[mach].o[orient]
			buf, freeFn, err := anonAlloc(8 * o.edges)
			if err != nil {
				dc.free()
				return nil, fmt.Errorf("store: decode arena for machine %d: %w", mach, err)
			}
			a := &arena{mach: mach, orient: orient, buf: buf, freeFn: freeFn}
			if o.edges > 0 {
				a.refs = unsafe.Slice((*int64)(unsafe.Pointer(&buf[0])), o.edges)
			}
			nb := len(o.firstRow) - 1
			a.blocks = make([]blockState, nb)
			for b := 0; b < nb; b++ {
				bs := &a.blocks[b]
				bs.a = a
				bs.lo = 8 * o.rows[o.firstRow[b]]
				bs.hi = 8 * o.rows[o.firstRow[b+1]]
			}
			dc.arenas[mach][orient] = a
		}
	}
	sf.cache = dc
	return dc, nil
}

// Refs returns the full-length decoded-ref arena view for (mach, orient).
// Only ranges covered by a live PinToken hold decoded data; everything else
// reads as garbage (zeros, or a stale eviction residue).
func (dc *DecodeCache) Refs(mach, orient int) []int64 {
	return dc.arenas[mach][orient].refs
}

// PinToken is a claim on the decoded blocks covering one chunk's rows. The
// zero value is a valid no-op. Release is idempotent.
type PinToken struct {
	dc       *DecodeCache
	a        *arena
	blo, bhi int
}

// Pin ensures every block covering rows [rowLo, rowHi) of (mach, orient) is
// decoded and pinned against eviction, and returns the token that releases
// them. On error nothing stays pinned.
func (dc *DecodeCache) Pin(mach, orient int, rowLo, rowHi int64) (PinToken, error) {
	blo, bhi := dc.sf.blockRange(mach, orient, rowLo, rowHi)
	if blo == bhi {
		return PinToken{}, nil
	}
	a := dc.arenas[mach][orient]
	for b := blo; b < bhi; b++ {
		if err := dc.pinBlock(a, b); err != nil {
			dc.unpin(a, blo, b)
			return PinToken{}, err
		}
	}
	return PinToken{dc: dc, a: a, blo: blo, bhi: bhi}, nil
}

func (dc *DecodeCache) pinBlock(a *arena, b int) error {
	bs := &a.blocks[b]
	dc.mu.Lock()
	bs.pins++
	if bs.decoded {
		dc.lru.moveToFront(bs)
		dc.mu.Unlock()
		dc.hits.Add(1)
		return nil
	}
	dc.mu.Unlock()

	bs.mu.Lock()
	defer bs.mu.Unlock()
	dc.mu.Lock()
	if bs.decoded { // another claimant decoded it while we waited
		dc.lru.moveToFront(bs)
		dc.mu.Unlock()
		dc.hits.Add(1)
		return nil
	}
	dc.mu.Unlock()

	if _, err := dc.sf.decodeV3Block(a.mach, a.orient, b, a.refs, nil); err != nil {
		dc.mu.Lock()
		bs.pins--
		dc.mu.Unlock()
		return err
	}
	dc.mu.Lock()
	bs.decoded = true
	dc.used += bs.bytes()
	dc.lru.pushFront(bs)
	dc.evictLocked()
	dc.mu.Unlock()
	dc.misses.Add(1)
	dc.decodedBytes.Add(bs.bytes())
	return nil
}

// evictLocked walks the LRU tail dropping cold unpinned blocks until the
// budget holds (or only pinned blocks remain). Caller holds dc.mu.
func (dc *DecodeCache) evictLocked() {
	if dc.budget <= 0 {
		return
	}
	cand := dc.lru.head.prev
	for dc.used > dc.budget && cand != &dc.lru.head {
		victim := cand
		cand = cand.prev
		if victim.pins > 0 {
			continue
		}
		dc.lru.remove(victim)
		victim.decoded = false
		dc.used -= victim.bytes()
		dc.evictedBytes.Add(victim.bytes())
		// Release only the block's interior pages: a boundary page may carry
		// a neighboring decoded block's bytes, and DONTNEED on an anonymous
		// mapping zeroes. The skipped edge pages are reclaimed when their
		// neighbors evict (or rewritten on re-decode).
		ps := dc.sf.pageSize
		aLo := (victim.lo + ps - 1) &^ (ps - 1)
		aHi := victim.hi &^ (ps - 1)
		if aHi > aLo {
			advise(victim.a.buf[aLo:aHi], advDontNeed)
		}
	}
}

func (dc *DecodeCache) unpin(a *arena, blo, bhi int) {
	dc.mu.Lock()
	for b := blo; b < bhi; b++ {
		a.blocks[b].pins--
	}
	dc.mu.Unlock()
}

// Release drops the token's pins. Safe on the zero token; a second call on
// the same token is a no-op.
func (t *PinToken) Release() {
	if t.dc == nil {
		return
	}
	t.dc.unpin(t.a, t.blo, t.bhi)
	t.dc = nil
}

// Stats snapshots the cache counters.
func (dc *DecodeCache) Stats() DecodeCacheStats {
	st := DecodeCacheStats{
		Hits:         dc.hits.Load(),
		Misses:       dc.misses.Load(),
		DecodedBytes: dc.decodedBytes.Load(),
		EvictedBytes: dc.evictedBytes.Load(),
	}
	dc.mu.Lock()
	st.UsedBytes = dc.used
	for _, pair := range dc.arenas {
		for _, a := range pair {
			if a == nil {
				continue
			}
			for b := range a.blocks {
				if a.blocks[b].pins > 0 {
					st.PinnedBlocks++
				}
			}
		}
	}
	dc.mu.Unlock()
	return st
}

// TouchCompressed advises the residency window about the compressed bytes
// the blocks covering rows [rowLo, rowHi) occupy in the file mapping — the
// out-of-core prefetch hook for compressed sections, which touches ~3 bytes
// per edge instead of the 8 raw bytes a v2 section would fault in.
func (dc *DecodeCache) TouchCompressed(r *Residency, mach, orient int, rowLo, rowHi int64) {
	if r == nil {
		return
	}
	blo, bhi := dc.sf.blockRange(mach, orient, rowLo, rowHi)
	if blo == bhi {
		return
	}
	o := &dc.sf.v3[mach].o[orient]
	r.TouchBytes(o.comp, o.offs[blo], o.offs[bhi])
}

// free unmaps every arena. Called under File.cacheMu from File.Close.
func (dc *DecodeCache) free() {
	for _, pair := range dc.arenas {
		for _, a := range pair {
			if a != nil && a.freeFn != nil {
				a.freeFn() //nolint:errcheck
			}
		}
	}
	dc.arenas = nil
}
