package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

func testGraph(t *testing.T, weighted bool) *graph.Graph {
	t.Helper()
	g, err := graph.RMAT(8, 8, graph.TwitterLike(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if weighted {
		g = g.WithUniformWeights(0.5, 2.0, 7)
	}
	return g
}

// globalView reconstructs the global CSR from a file's sections and compares
// it against the source orientation, including per-row neighbor order.
func checkOrientation(t *testing.T, sf *File, src *graph.CSR, out bool) {
	t.Helper()
	layout := sf.Layout()
	var at int64
	for mach := 0; mach < sf.NumMachines(); mach++ {
		sec := sf.Section(mach)
		rows, refs, weights := sec.InRows, sec.InRefs, sec.InWeights
		if out {
			rows, refs, weights = sec.OutRows, sec.OutRefs, sec.OutWeights
		}
		lo, hi := layout.Range(mach)
		numLocal := int64(hi - lo)
		if int64(len(rows)) != numLocal+1 {
			t.Fatalf("machine %d: rows len %d, want %d", mach, len(rows), numLocal+1)
		}
		for u := int64(0); u < numLocal; u++ {
			gu := graph.NodeID(int64(lo) + u)
			wantDeg := src.Rows[gu+1] - src.Rows[gu]
			if got := rows[u+1] - rows[u]; got != wantDeg {
				t.Fatalf("machine %d node %d: degree %d, want %d", mach, gu, got, wantDeg)
			}
			for i := rows[u]; i < rows[u+1]; i++ {
				var v graph.NodeID
				if refs[i] >= 0 {
					v = lo + graph.NodeID(refs[i])
				} else {
					rm, off := unpackRemoteRef(refs[i])
					v = layout.Starts[rm] + graph.NodeID(off)
				}
				srcIdx := src.Rows[gu] + (i - rows[u])
				if want := src.Cols[srcIdx]; v != want {
					t.Fatalf("machine %d node %d edge %d: neighbor %d, want %d", mach, gu, i-rows[u], v, want)
				}
				if src.Weights != nil {
					if weights == nil || weights[i] != src.Weights[srcIdx] {
						t.Fatalf("machine %d node %d edge %d: weight mismatch", mach, gu, i-rows[u])
					}
				}
			}
			at++
		}
	}
}

func TestWriteOpenRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		name := "unweighted"
		if weighted {
			name = "weighted"
		}
		t.Run(name, func(t *testing.T) {
			g := testGraph(t, weighted)
			path := filepath.Join(t.TempDir(), "g.csr2")
			if err := WriteGraph(path, g, 3); err != nil {
				t.Fatal(err)
			}
			sf, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer sf.Close()
			if sf.NumNodes() != g.NumNodes() || sf.NumEdges() != g.NumEdges() {
				t.Fatalf("header (n=%d m=%d), want (n=%d m=%d)", sf.NumNodes(), sf.NumEdges(), g.NumNodes(), g.NumEdges())
			}
			if sf.Weighted() != weighted {
				t.Fatalf("weighted = %v, want %v", sf.Weighted(), weighted)
			}
			wantLayout, err := partition.Compute(g, 3, partition.EdgeBalanced)
			if err != nil {
				t.Fatal(err)
			}
			gotLayout := sf.Layout()
			for i := range wantLayout.Starts {
				if gotLayout.Starts[i] != wantLayout.Starts[i] {
					t.Fatalf("layout starts %v, want %v", gotLayout.Starts, wantLayout.Starts)
				}
			}
			checkOrientation(t, sf, &g.Out, true)
			checkOrientation(t, sf, &g.In, false)
			wantMass := wantLayout.DegreeMass(g)
			gotMass := sf.DegreeMass()
			for i := range wantMass {
				if gotMass[i] != wantMass[i] {
					t.Fatalf("degree mass %v, want %v", gotMass, wantMass)
				}
			}
		})
	}
}

func TestSizeOfMatchesFile(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := testGraph(t, weighted)
		path := filepath.Join(t.TempDir(), "g.csr2")
		if err := WriteGraph(path, g, 4); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := SizeOf(g.NumNodes(), g.NumEdges(), 4, weighted, 3).FileBytes; got != st.Size() {
			t.Fatalf("weighted=%v: SizeOf %d, file %d", weighted, got, st.Size())
		}
	}
}

// TestStreamedMatchesInMemory: WriteStream over a regenerating edge stream
// must produce byte-for-byte the file WriteGraph produces from the fully
// materialized graph — same layout cut, same ref order, same canonical
// in-orientation.
func TestStreamedMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name   string
		stream *graph.GenStream
		build  func() (*graph.Graph, error)
	}{
		{"rmat", mustStream(graph.RMATStream(8, 8, graph.TwitterLike(), 42)),
			func() (*graph.Graph, error) { return graph.RMAT(8, 8, graph.TwitterLike(), 42) }},
		{"uniform", mustStream(graph.UniformStream(300, 4000, 9)),
			func() (*graph.Graph, error) { return graph.Uniform(300, 4000, 9) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			memPath := filepath.Join(dir, tc.name+".mem.csr2")
			if err := WriteGraph(memPath, g, 3); err != nil {
				t.Fatal(err)
			}
			streamPath := filepath.Join(dir, tc.name+".stream.csr2")
			// Tiny buckets force many sweeps, exercising the re-runnability
			// contract and the bucket math.
			if err := WriteStream(streamPath, tc.stream, StreamOptions{Machines: 3, BucketBytes: 1 << 12}); err != nil {
				t.Fatal(err)
			}
			a, err := os.ReadFile(memPath)
			if err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(streamPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("streamed file differs from in-memory file (%d vs %d bytes)", len(b), len(a))
			}
		})
	}
}

func mustStream(s *graph.GenStream, err error) *graph.GenStream {
	if err != nil {
		panic(err)
	}
	return s
}

// edgeListStream adapts a fixed edge list (optionally weighted) to the
// EdgeStream contract for tests.
type edgeListStream struct {
	n        int
	edges    []graph.Edge
	weighted bool
}

func (s *edgeListStream) NumNodes() int  { return s.n }
func (s *edgeListStream) Weighted() bool { return s.weighted }
func (s *edgeListStream) Sweep(emit func(u, v uint32, w float64)) {
	for _, e := range s.edges {
		emit(uint32(e.Src), uint32(e.Dst), e.Weight)
	}
}

func TestStreamedWeighted(t *testing.T) {
	g := testGraph(t, true)
	es := &edgeListStream{n: g.NumNodes(), edges: g.EdgeList(), weighted: true}
	dir := t.TempDir()
	memPath := filepath.Join(dir, "w.mem.csr2")
	streamPath := filepath.Join(dir, "w.stream.csr2")
	if err := WriteGraph(memPath, g, 2); err != nil {
		t.Fatal(err)
	}
	if err := WriteStream(streamPath, es, StreamOptions{Machines: 2, BucketBytes: 1 << 13}); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(memPath)
	b, _ := os.ReadFile(streamPath)
	if !bytes.Equal(a, b) {
		t.Fatal("weighted streamed file differs from in-memory file")
	}
}

// writeValid produces a small valid file plus its parsed form for
// corruption tests.
func writeValid(t *testing.T) (string, []byte) {
	t.Helper()
	g := testGraph(t, false)
	path := filepath.Join(t.TempDir(), "g.csr2")
	if err := WriteGraph(path, g, 2); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

func reopen(t *testing.T, path string, data []byte) error {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sf, err := Open(path)
	if err == nil {
		sf.Close()
	}
	return err
}

func TestOpenRejectsCorruption(t *testing.T) {
	path, orig := writeValid(t)

	mutate := func(fn func(d []byte) []byte) []byte {
		d := append([]byte(nil), orig...)
		return fn(d)
	}

	cases := []struct {
		name    string
		data    []byte
		wantSub string
	}{
		{"empty", nil, "too short"},
		{"bad magic", mutate(func(d []byte) []byte { d[0] = 'X'; return d }), "bad magic"},
		{"wrong version", mutate(func(d []byte) []byte { putU32(d[8:], 99); return d }), "version"},
		{"unknown flags", mutate(func(d []byte) []byte { putU32(d[12:], 0xff00); return d }), "unknown flag"},
		{"zero machines", mutate(func(d []byte) []byte { putU64(d[32:], 0); return d }), "machine count"},
		{"truncated header", orig[:20], "too short"},
		{"truncated table", orig[:headerFixedBytes+4], "truncated"},
		{"truncated body", orig[:len(orig)-16], "truncated"},
		{"trailing bytes", append(append([]byte(nil), orig...), 0, 0, 0, 0, 0, 0, 0, 0), "trailing"},
		{"starts not covering", mutate(func(d []byte) []byte {
			putU32(d[headerFixedBytes+4*2:], 7) // starts[2] (=n for p=2) → bogus
			return d
		}), "cover"},
		{"rows not monotone", mutate(func(d []byte) []byte {
			// First machine's outRows[1] ← a huge value, breaking monotonicity
			// against outRows[2] (or the refs-length agreement).
			off := int64(leU64(d[tableOffset(2):]))
			putU64(d[off+8:], 1<<40)
			return d
		}), "store:"},
		{"local ref out of range", mutate(func(d []byte) []byte {
			refsOff := int64(leU64(d[tableOffset(2)+8:]))
			putU64(d[refsOff:], uint64(int64(1<<31))) // way past numLocal
			return d
		}), "out of range"},
		{"remote ref bad machine", mutate(func(d []byte) []byte {
			refsOff := int64(leU64(d[tableOffset(2)+8:]))
			putU64(d[refsOff:], uint64(packRemoteRef(500, 0)))
			return d
		}), "remote machine"},
		{"weight offset in unweighted", mutate(func(d []byte) []byte {
			putU64(d[tableOffset(2)+16:], 64) // outWeights slot must be 0
			return d
		}), "weight offset"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := reopen(t, path, tc.data)
			if err == nil {
				t.Fatal("Open accepted a corrupt file")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}

	// The original must still open after all that mutation.
	if err := reopen(t, path, orig); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
}

func TestResidencyWindow(t *testing.T) {
	g := testGraph(t, false)
	path := filepath.Join(t.TempDir(), "g.csr2")
	if err := WriteGraph(path, g, 2); err != nil {
		t.Fatal(err)
	}
	sf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()

	var nilRes *Residency
	nilRes.TouchI64(sf.Section(0).OutRefs, 0, 10) // nil-safe
	nilRes.Drop()

	res := sf.NewResidency(8 << 10) // tiny: forces eviction churn
	if res == nil && mmapBacked {
		t.Fatal("NewResidency returned nil on an mmap platform")
	}
	for mach := 0; mach < 2; mach++ {
		sec := sf.Section(mach)
		rows := sec.OutRows
		for u := 0; u+64 < len(rows); u += 64 {
			res.TouchI64(rows, int64(u), int64(u+64))
			res.TouchI64(sec.OutRefs, rows[u], rows[u+64])
		}
	}
	// Heap slices are ignored, not advised.
	res.TouchI64(make([]int64, 128), 0, 128)
	res.Drop()
}
