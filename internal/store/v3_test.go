package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

// openPair writes the same graph raw and compressed and opens both.
func openPair(t *testing.T, g *graph.Graph, p int) (raw, comp *File) {
	t.Helper()
	dir := t.TempDir()
	rawPath := filepath.Join(dir, "g.csr2")
	compPath := filepath.Join(dir, "g.csr3")
	if err := WriteGraph(rawPath, g, p); err != nil {
		t.Fatal(err)
	}
	if err := WriteGraphCompressed(compPath, g, p); err != nil {
		t.Fatal(err)
	}
	var err error
	if raw, err = Open(rawPath); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })
	if comp, err = Open(compPath); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { comp.Close() })
	return raw, comp
}

// TestCompressedRoundTrip: decoding every block of a compressed file must
// reproduce the raw file's refs bit-for-bit — same values, same per-row
// order — with rows and weights identical too.
func TestCompressedRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		name := "unweighted"
		if weighted {
			name = "weighted"
		}
		t.Run(name, func(t *testing.T) {
			g := testGraph(t, weighted)
			raw, comp := openPair(t, g, 3)
			if !comp.Compressed() || raw.Compressed() {
				t.Fatal("Compressed() flags wrong")
			}
			if comp.Weighted() != weighted {
				t.Fatalf("weighted = %v, want %v", comp.Weighted(), weighted)
			}
			dc, err := comp.EnsureDecodeCache(0) // unbounded
			if err != nil {
				t.Fatal(err)
			}
			for mach := 0; mach < 3; mach++ {
				rs, cs := raw.Section(mach), comp.Section(mach)
				if cs.OutRefs != nil || cs.InRefs != nil {
					t.Fatal("compressed section exposes raw refs")
				}
				for orient := 0; orient < 2; orient++ {
					wantRows, wantRefs, wantW := rs.OutRows, rs.OutRefs, rs.OutWeights
					rows, w := cs.OutRows, cs.OutWeights
					if orient == OrientIn {
						wantRows, wantRefs, wantW = rs.InRows, rs.InRefs, rs.InWeights
						rows, w = cs.InRows, cs.InWeights
					}
					numLocal := int64(len(rows)) - 1
					for u := int64(0); u <= numLocal; u++ {
						if rows[u] != wantRows[u] {
							t.Fatalf("machine %d orient %d rows[%d] = %d, want %d", mach, orient, u, rows[u], wantRows[u])
						}
					}
					tok, err := dc.Pin(mach, orient, 0, numLocal)
					if err != nil {
						t.Fatal(err)
					}
					refs := dc.Refs(mach, orient)
					if len(refs) != len(wantRefs) {
						t.Fatalf("machine %d orient %d: %d refs, want %d", mach, orient, len(refs), len(wantRefs))
					}
					for i := range refs {
						if refs[i] != wantRefs[i] {
							t.Fatalf("machine %d orient %d ref %d = %d, want %d", mach, orient, i, refs[i], wantRefs[i])
						}
					}
					for i := range w {
						if w[i] != wantW[i] {
							t.Fatalf("machine %d orient %d weight %d mismatch", mach, orient, i)
						}
					}
					tok.Release()
				}
			}
			if st := dc.Stats(); st.PinnedBlocks != 0 {
				t.Fatalf("%d blocks still pinned after release", st.PinnedBlocks)
			}
		})
	}
}

// TestCompressedStreamMatchesMaterialized: the streaming writer's compressed
// output must be byte-identical to compressing the materialized graph.
func TestCompressedStreamMatchesMaterialized(t *testing.T) {
	g, err := graph.RMAT(8, 8, graph.TwitterLike(), 42)
	if err != nil {
		t.Fatal(err)
	}
	es := mustStream(graph.RMATStream(8, 8, graph.TwitterLike(), 42))
	dir := t.TempDir()
	memPath := filepath.Join(dir, "mem.csr3")
	streamPath := filepath.Join(dir, "stream.csr3")
	if err := WriteGraphCompressed(memPath, g, 3); err != nil {
		t.Fatal(err)
	}
	if err := WriteStream(streamPath, es, StreamOptions{Machines: 3, BucketBytes: 1 << 12, Compress: true}); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(memPath)
	b, _ := os.ReadFile(streamPath)
	if !bytes.Equal(a, b) {
		t.Fatalf("streamed compressed file differs from materialized (%d vs %d bytes)", len(b), len(a))
	}
	// No raw temp left behind.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".pgxd-raw-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// TestCompressedSmaller asserts the headline ratio on an unweighted RMAT:
// even at tiny scale the refs+rows encoding must beat raw by >= 1.8x overall.
func TestCompressedSmaller(t *testing.T) {
	g, err := graph.RMAT(10, 8, graph.TwitterLike(), 7)
	if err != nil {
		t.Fatal(err)
	}
	raw, comp := openPair(t, g, 4)
	ratio := float64(raw.FileBytes()) / float64(comp.FileBytes())
	if ratio < 1.8 {
		t.Fatalf("compression ratio %.2fx (raw %d, compressed %d), want >= 1.8x",
			ratio, raw.FileBytes(), comp.FileBytes())
	}
	// The sizing estimate must bracket sanely: estimated compressed size is
	// an upper-bound-leaning guess but still below raw.
	s := SizeOf(g.NumNodes(), g.NumEdges(), 4, false, 3)
	if s.CompressedFileBytes >= s.FileBytes {
		t.Fatalf("estimated compressed %d not below raw %d", s.CompressedFileBytes, s.FileBytes)
	}
	if s.DecodeCacheBytes <= 0 {
		t.Fatal("no decode-cache term in sizing")
	}
	if got := comp.Sizing(3).CompressedFileBytes; got != comp.FileBytes() {
		t.Fatalf("open-file sizing %d, want exact %d", got, comp.FileBytes())
	}
}

// TestCompressedRejectsCorruption mutates a valid v3 file the way the v2
// corruption suite does: every torn, overlong, disagreeing, or non-canonical
// encoding must be rejected at Open.
func TestCompressedRejectsCorruption(t *testing.T) {
	g := testGraph(t, false)
	path := filepath.Join(t.TempDir(), "g.csr3")
	if err := WriteGraphCompressed(path, g, 2); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate machine 0's out blob from the section table.
	tbl := tableOffset(2)
	blobOff := int64(leU64(orig[tbl:]))
	rowBytes := int64(leU64(orig[blobOff:]))
	blockCount := int64(leU64(orig[blobOff+8:]))
	refBytes := int64(leU64(orig[blobOff+16:]))
	idxOff := blobOff + v3BlobHeaderBytes + pad8(rowBytes)
	compOff := idxOff + 16*(blockCount+1)

	mutate := func(fn func(d []byte)) []byte {
		d := append([]byte(nil), orig...)
		fn(d)
		return d
	}
	cases := []struct {
		name    string
		data    []byte
		wantSub string
	}{
		{"v3 without flag", mutate(func(d []byte) { putU32(d[12:], 0) }), "must agree"},
		{"v2 with flag", mutate(func(d []byte) { putU32(d[8:], Version) }), "must agree"},
		{"sub-header disagrees", mutate(func(d []byte) { putU64(d[blobOff:], uint64(rowBytes+8)) }), "disagrees"},
		{"torn degree varint", mutate(func(d []byte) { d[blobOff+v3BlobHeaderBytes] = 0x80 }), "store:"},
		{"torn compressed row", mutate(func(d []byte) { d[compOff+refBytes-1] |= 0x80 }), "store:"},
		{"bad sentinel row", mutate(func(d []byte) {
			s := int64(leU64(d[idxOff+16*blockCount:]))
			putU64(d[idxOff+16*blockCount:], uint64(s+1))
		}), "sentinel"},
		{"first block not zero", mutate(func(d []byte) { putU64(d[idxOff+8:], 1) }), "store:"},
		{"trailing bytes", append(append([]byte(nil), orig...), 0, 0, 0, 0, 0, 0, 0, 0), "trailing"},
		{"truncated", orig[:len(orig)-8], "store:"},
	}
	if pad8(refBytes) > refBytes {
		cases = append(cases, struct {
			name    string
			data    []byte
			wantSub string
		}{"non-zero padding", mutate(func(d []byte) { d[compOff+refBytes] = 1 }), "padding"})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := reopen(t, path, tc.data)
			if err == nil {
				t.Fatal("Open accepted a corrupt compressed file")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	if err := reopen(t, path, orig); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
}

// TestDecodeCacheEviction drives a multi-block section through a one-block
// budget: every re-pin after eviction must re-decode to the same bits, stats
// must track hits/misses/evictions, and pins must block eviction.
func TestDecodeCacheEviction(t *testing.T) {
	g, err := graph.Uniform(512, 80000, 9)
	if err != nil {
		t.Fatal(err)
	}
	raw, comp := openPair(t, g, 2)
	dc, err := comp.EnsureDecodeCache(64 << 10) // 8192 ids: ~one block
	if err != nil {
		t.Fatal(err)
	}
	if again, err := comp.EnsureDecodeCache(1 << 30); err != nil || again != dc {
		t.Fatal("EnsureDecodeCache is not a singleton")
	}
	if _, err := raw.EnsureDecodeCache(0); err == nil {
		t.Fatal("EnsureDecodeCache accepted a raw file")
	}

	sec := raw.Section(0)
	rows := comp.Section(0).OutRows
	numLocal := int64(len(rows)) - 1
	if nb := len(comp.v3[0].o[OrientOut].firstRow) - 1; nb < 3 {
		t.Fatalf("test graph yields %d blocks, want >= 3 for eviction churn", nb)
	}
	check := func(lo, hi int64) {
		tok, err := dc.Pin(0, OrientOut, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		defer tok.Release()
		refs := dc.Refs(0, OrientOut)
		for e := rows[lo]; e < rows[hi]; e++ {
			if refs[e] != sec.OutRefs[e] {
				t.Fatalf("ref %d = %d, want %d", e, refs[e], sec.OutRefs[e])
			}
		}
	}
	// Two passes over row windows: the second pass re-decodes what the
	// budget evicted during the first.
	step := numLocal / 8
	for pass := 0; pass < 2; pass++ {
		for lo := int64(0); lo < numLocal; lo += step {
			hi := lo + step
			if hi > numLocal {
				hi = numLocal
			}
			check(lo, hi)
		}
	}
	st := dc.Stats()
	if st.Misses == 0 || st.EvictedBytes == 0 {
		t.Fatalf("no eviction churn: %+v", st)
	}
	if st.DecodedBytes <= st.EvictedBytes-st.UsedBytes {
		t.Fatalf("implausible accounting: %+v", st)
	}
	if st.PinnedBlocks != 0 {
		t.Fatalf("%d blocks pinned after release", st.PinnedBlocks)
	}

	// A held pin survives budget pressure: pin block 0's rows, churn the
	// rest, and the pinned range must still read back correctly.
	o := &comp.v3[0].o[OrientOut]
	tok, err := dc.Pin(0, OrientOut, 0, o.firstRow[1])
	if err != nil {
		t.Fatal(err)
	}
	for lo := o.firstRow[1]; lo < numLocal; lo += step {
		hi := lo + step
		if hi > numLocal {
			hi = numLocal
		}
		check(lo, hi)
	}
	refs := dc.Refs(0, OrientOut)
	for e := rows[0]; e < rows[o.firstRow[1]]; e++ {
		if refs[e] != sec.OutRefs[e] {
			t.Fatalf("pinned ref %d lost: %d, want %d", e, refs[e], sec.OutRefs[e])
		}
	}
	tok.Release()
	tok.Release() // idempotent
	if st := dc.Stats(); st.PinnedBlocks != 0 {
		t.Fatalf("%d blocks pinned after idempotent release", st.PinnedBlocks)
	}

	// TouchCompressed is nil-safe and bounded.
	dc.TouchCompressed(nil, 0, OrientOut, 0, numLocal)
	res := comp.NewResidency(1 << 20)
	dc.TouchCompressed(res, 0, OrientOut, 0, numLocal)
	dc.TouchCompressed(res, 1, OrientIn, 0, 0)
	res.Drop()
}
