//go:build linux

package store

import (
	"os"
	"syscall"
)

// mapRO maps the file read-only and shared; residency is then governed by
// the page cache, which is the whole point of the format.
func mapRO(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

// mapRW maps the file read-write and shared — the streaming writer's scatter
// target. Dirty pages belong to the page cache, so MADV_DONTNEED after a
// bucket unmaps them from this process without losing data.
func mapRW(f *os.File, size int64) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

// anonAlloc allocates a zeroed, page-aligned region outside the Go heap via
// an anonymous private mapping. Decode arenas and off-heap property columns
// live here: the address space is reserved up front but pages materialize
// only when written, and MADV_DONTNEED returns them to the kernel (reading
// the range afterwards yields zeros). The returned free func unmaps; the
// slice must not be used after.
func anonAlloc(size int64) ([]byte, func() error, error) {
	if size <= 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(-1, 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

// Advice values for advise.
const (
	advNormal     = syscall.MADV_NORMAL
	advSequential = syscall.MADV_SEQUENTIAL
	advWillNeed   = syscall.MADV_WILLNEED
	advDontNeed   = syscall.MADV_DONTNEED
)

// advise applies madvise to b. The caller must pass a page-aligned start
// (whole mappings and adviseRange sub-slices are). Best-effort: advice is a
// hint, failures are ignored.
func advise(b []byte, advice int) {
	if len(b) == 0 {
		return
	}
	syscall.Madvise(b, advice) //nolint:errcheck
}

// mmapBacked reports whether this platform serves store files from real
// mappings (true) or a heap copy (false).
const mmapBacked = true
