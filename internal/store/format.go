// Package store is the engine's out-of-core storage subsystem: a binary
// CSR v2 file format whose per-machine partition sections hold the engine's
// pre-resolved node references, loaded zero-copy via mmap so page-cache
// eviction — not the Go heap — governs topology residency. The paper's
// Table 4 already distinguishes a fast binary on-disk format; GraphD
// (PAPERS.md) shows that streaming edges from disk under a small memory
// budget stays competitive when the message path is lean. This package makes
// graphs bigger than RAM a load-time choice rather than an engine rewrite:
// the mmap-backed section views satisfy the same row/ref slice contract as
// the in-memory local store, so the chunk scheduler, partition.EdgeChunks,
// and every kernel run unmodified over disk-backed topology.
//
// # File layout (CSR v2, little-endian)
//
//	offset 0   magic           "PGXDCSR2"
//	       8   version         u32 (= 2)
//	      12   flags           u32 (bit 0: weighted)
//	      16   numNodes        u64
//	      24   numEdges        u64 (directed)
//	      32   numMachines     u64 (P)
//	      40   starts          [P+1]u32, zero-padded to 8-byte alignment
//	       -   section table   P × 6 u64 absolute offsets:
//	               outRows, outRefs, outWeights, inRows, inRefs, inWeights
//	               (weight offsets are 0 when unweighted)
//	       -   per-machine sections, every array 8-byte aligned:
//	               outRows  [numLocal+1]i64   prefix sums, outRows[0] == 0
//	               outRefs  [mOut]i64         pre-resolved refs (no ghosts)
//	               outWeights [mOut]f64       (weighted files only)
//	               inRows   [numLocal+1]i64
//	               inRefs   [mIn]i64
//	               inWeights [mIn]f64
//
// Refs use the engine's encoding with ghosting disabled: ref >= 0 is the
// owner-local node index, ref < 0 is ^(machine<<32 | offset) naming a remote
// slot. Ghost-free refs are invertible to global ids, which is what lets the
// streaming writer derive the in-orientation from already-written out
// sections in canonical (transpose) order.
package store

import (
	"encoding/binary"
	"fmt"
)

// Magic identifies a CSR store file (versions 2 and 3 share it).
const Magic = "PGXDCSR2"

// Version is the raw (uncompressed) format version.
const Version = 2

// Version3 is the compressed-edge format version. A v3 file carries the
// same prelude and starts array as v2, but each machine's edge sections are
// delta-varint block blobs (see the compressed layout note below) and the
// section table fields are reinterpreted: outBlobOff, outBlobLen,
// outWeightsOff, inBlobOff, inBlobLen, inWeightsOff. Weights stay raw f64
// arrays — they are incompressible noise and keeping them flat preserves the
// zero-copy mmap view kernels index absolutely.
const Version3 = 3

// Format flags.
const (
	// FlagWeighted marks files carrying per-edge float64 weights.
	FlagWeighted uint32 = 1 << 0
	// FlagCompressedEdges marks files whose edge sections are codec-encoded
	// block blobs (version 3). The flag and the version field must agree.
	FlagCompressedEdges uint32 = 1 << 1

	knownFlags = FlagWeighted | FlagCompressedEdges
)

// Compressed blob layout (one per machine per orientation, 8-aligned):
//
//	u64 rowBytes      exact compRows content length
//	u64 blockCount    number of edge blocks
//	u64 refBytes      exact compRefs content length
//	compRows          numLocal uvarint degrees (the deltas of the prefix-sum
//	                  row array), zero-padded to 8-byte alignment
//	blockIndex        (blockCount+1) x {u64 firstRow, u64 byteOff}: block b
//	                  covers rows [firstRow[b], firstRow[b+1]) and bytes
//	                  [byteOff[b], byteOff[b+1]) of compRefs; the last entry
//	                  is the {numLocal, refBytes} sentinel
//	compRefs          per-row zigzag-delta varints of global neighbor ids
//	                  (prev resets to 0 at each row start — rows keep edge
//	                  insertion order, so gaps are signed), zero-padded to
//	                  8-byte alignment
//
// Every block holds whole rows and at least one edge; a hub row larger than
// the target becomes one oversized block. blockCount is 0 iff the section
// has no edges.
const (
	v3BlobHeaderBytes = 24
	// v3BlockTargetEdges is the writer's decoded-block granularity: 8192
	// edges = 64 KiB of decoded refs, the unit the decode cache pins and
	// evicts.
	v3BlockTargetEdges = 8192
)

// pad8 rounds n up to a multiple of 8.
func pad8(n int64) int64 { return (n + 7) &^ 7 }

const (
	headerFixedBytes = 40 // magic + version + flags + n + m + p
	secFieldCount    = 6  // offsets per machine in the section table
	maxMachines      = 1 << 15
)

// header is the decoded fixed-size prelude of a CSR store file.
type header struct {
	version  uint32
	flags    uint32
	numNodes uint64
	numEdges uint64
	p        int
}

// startsBytes returns the byte length of the starts array including its
// alignment padding.
func startsBytes(p int) int64 {
	raw := int64(4 * (p + 1))
	return (raw + 7) &^ 7
}

// tableOffset returns the file offset of the section table.
func tableOffset(p int) int64 {
	return int64(headerFixedBytes) + startsBytes(p)
}

// dataOffset returns the file offset of the first section array.
func dataOffset(p int) int64 {
	return tableOffset(p) + int64(8*secFieldCount*p)
}

func leU32(b []byte) uint32     { return binary.LittleEndian.Uint32(b) }
func leU64(b []byte) uint64     { return binary.LittleEndian.Uint64(b) }
func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

// parseHeader validates the fixed prelude and returns it decoded.
func parseHeader(data []byte) (header, error) {
	if len(data) < headerFixedBytes {
		return header{}, fmt.Errorf("store: file too short for header: %d bytes", len(data))
	}
	if string(data[:8]) != Magic {
		return header{}, fmt.Errorf("store: bad magic %q (want %q)", data[:8], Magic)
	}
	v := leU32(data[8:])
	if v != Version && v != Version3 {
		return header{}, fmt.Errorf("store: unsupported format version %d (want %d or %d)", v, Version, Version3)
	}
	h := header{
		version:  v,
		flags:    leU32(data[12:]),
		numNodes: leU64(data[16:]),
		numEdges: leU64(data[24:]),
	}
	if h.flags&^knownFlags != 0 {
		return header{}, fmt.Errorf("store: unknown flag bits %#x", h.flags&^knownFlags)
	}
	if compressed := h.flags&FlagCompressedEdges != 0; compressed != (v == Version3) {
		return header{}, fmt.Errorf("store: version %d with compressed-edges flag %v — version and flag must agree", v, compressed)
	}
	p := leU64(data[32:])
	if p < 1 || p > maxMachines {
		return header{}, fmt.Errorf("store: machine count %d out of range [1, %d]", p, maxMachines)
	}
	h.p = int(p)
	if h.numNodes > 1<<32 {
		return header{}, fmt.Errorf("store: node count %d exceeds the 32-bit id space", h.numNodes)
	}
	if want := dataOffset(h.p); int64(len(data)) < want {
		return header{}, fmt.Errorf("store: file truncated inside section table: %d bytes, need %d", len(data), want)
	}
	return h, nil
}

// packRemoteRef encodes a remote node reference exactly as the engine's
// local store does (core.RemoteRef): ^(machine<<32 | offset).
func packRemoteRef(machine int, offset uint32) int64 {
	return ^(int64(machine)<<32 | int64(offset))
}

// unpackRemoteRef inverts packRemoteRef.
func unpackRemoteRef(ref int64) (machine int, offset uint32) {
	packed := ^ref
	return int(packed >> 32), uint32(packed)
}
