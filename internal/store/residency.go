package store

import (
	"sync"
	"unsafe"
)

// Residency is a bounded window of resident file pages. The engine's chunk
// scheduler calls Touch as workers claim chunks: the claimed chunk's byte
// ranges are advised WILLNEED (prefetch — chunk claim order is sequential
// per machine, so this is the streaming hint), appended to a FIFO ring, and
// when the ring's page total exceeds the budget the oldest ranges are
// advised DONTNEED. The kernel would evict cold pages under real memory
// pressure anyway; the explicit window keeps peak RSS under the configured
// budget even on an otherwise idle machine, which is what the RSS-capped
// bench asserts.
//
// All methods are nil-safe no-ops, so call sites need no out-of-core branch.
type Residency struct {
	mu       sync.Mutex
	data     []byte // the mapping; Touch ignores pointers outside it
	base     uintptr
	budget   int64
	pageSize int64

	used int64
	ring []resSpan

	// Advise accounting (see Stats): bytes advised in by Touch calls and
	// bytes advised out by budget eviction, page-rounded, lifetime totals.
	touchedBytes int64
	evictedBytes int64
}

// ResidencyStats is a point-in-time snapshot of the window's advise
// counters.
type ResidencyStats struct {
	TouchedBytes int64
	EvictedBytes int64
}

type resSpan struct{ off, length int64 }

// NewResidency returns a residency window over this file's mapping with the
// given page budget in bytes. A budget <= 0, or a non-mmap platform, returns
// nil (every Touch no-ops and the page cache alone governs residency).
func (sf *File) NewResidency(budgetBytes int64) *Residency {
	if budgetBytes <= 0 || !mmapBacked || len(sf.data) == 0 {
		return nil
	}
	return &Residency{
		data:     sf.data,
		base:     uintptr(unsafe.Pointer(&sf.data[0])),
		budget:   budgetBytes,
		pageSize: sf.pageSize,
	}
}

// TouchI64 marks s[lo:hi] (an int64 view aliasing the mapping) as about to
// be read. Slices not backed by the mapping — in-memory stores, heap copies
// — are ignored.
func (r *Residency) TouchI64(s []int64, lo, hi int64) {
	if r == nil || hi <= lo || len(s) == 0 {
		return
	}
	r.touch(uintptr(unsafe.Pointer(&s[lo])), 8*(hi-lo))
}

// TouchF64 is TouchI64 for float64 views (edge weights).
func (r *Residency) TouchF64(s []float64, lo, hi int64) {
	if r == nil || hi <= lo || len(s) == 0 {
		return
	}
	r.touch(uintptr(unsafe.Pointer(&s[lo])), 8*(hi-lo))
}

// TouchBytes is TouchI64 for raw byte views (compressed section blobs).
func (r *Residency) TouchBytes(s []byte, lo, hi int64) {
	if r == nil || hi <= lo || len(s) == 0 {
		return
	}
	r.touch(uintptr(unsafe.Pointer(&s[lo])), hi-lo)
}

// Stats snapshots the window's advise counters. Nil-safe.
func (r *Residency) Stats() ResidencyStats {
	if r == nil {
		return ResidencyStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return ResidencyStats{TouchedBytes: r.touchedBytes, EvictedBytes: r.evictedBytes}
}

func (r *Residency) touch(ptr uintptr, length int64) {
	if ptr < r.base || ptr >= r.base+uintptr(len(r.data)) {
		return
	}
	off := int64(ptr - r.base)
	// Page-align the span; madvise requires an aligned start and the ring
	// accounts whole pages.
	aOff := off &^ (r.pageSize - 1)
	aEnd := (off + length + r.pageSize - 1) &^ (r.pageSize - 1)
	if aEnd > int64(len(r.data)) {
		aEnd = int64(len(r.data))
	}
	if aEnd <= aOff {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	advise(r.data[aOff:aEnd], advWillNeed)
	r.used += aEnd - aOff
	r.touchedBytes += aEnd - aOff
	r.ring = append(r.ring, resSpan{off: aOff, length: aEnd - aOff})
	// Evict oldest spans beyond the budget, always keeping the span just
	// touched. Overlapping spans double-count and double-evict; both err
	// toward a smaller resident set, which is the safe direction.
	for r.used > r.budget && len(r.ring) > 1 {
		old := r.ring[0]
		r.ring = r.ring[1:]
		r.used -= old.length
		r.evictedBytes += old.length
		advise(r.data[old.off:old.off+old.length], advDontNeed)
	}
}

// Drop releases the whole window (end of a run): every ringed span is
// advised away and the ring resets.
func (r *Residency) Drop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	advise(r.data, advDontNeed)
	r.ring = nil
	r.used = 0
}
