//go:build !linux

package store

import (
	"io"
	"os"
)

// Non-Linux fallback: read the file into the heap. Correctness is identical;
// the out-of-core residency properties are Linux-only (the only platform
// this engine benches on).

func mapRO(f *os.File, size int64) ([]byte, func() error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}

// mapRW keeps the whole output in memory and flushes it on close.
func mapRW(f *os.File, size int64) ([]byte, func() error, error) {
	data := make([]byte, size)
	return data, func() error {
		_, err := f.WriteAt(data, 0)
		return err
	}, nil
}

// anonAlloc falls back to a heap allocation: no page-granular release, but
// decode-cache bookkeeping (and correctness) is identical.
func anonAlloc(size int64) ([]byte, func() error, error) {
	if size <= 0 {
		return nil, func() error { return nil }, nil
	}
	return make([]byte, size), func() error { return nil }, nil
}

const (
	advNormal     = 0
	advSequential = 1
	advWillNeed   = 2
	advDontNeed   = 3
)

func advise(b []byte, advice int) {}

const mmapBacked = false
