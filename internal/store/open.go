package store

import (
	"fmt"
	"os"
	"sync"
	"unsafe"

	"repro/internal/partition"
)

// Section is one machine's slice of the file: the same rows/refs/weights
// slice contract core's local store builds in memory, aliasing the mapping.
type Section struct {
	OutRows    []int64
	OutRefs    []int64
	OutWeights []float64 // nil when unweighted
	InRows     []int64
	InRefs     []int64
	InWeights  []float64
}

// File is an open, validated CSR v2 file. The section views alias the mmap
// region: reading them faults pages in on demand and the kernel evicts them
// under pressure, so topology residency is governed by the page cache, not
// the Go heap. Close unmaps everything — no section slice may be used after.
type File struct {
	path     string
	data     []byte
	unmap    func() error
	hdr      header
	starts   []uint32
	secs     []Section
	degMass  []int64
	pageSize int64

	// v3 holds the compressed-section metadata (version 3 files only); for
	// such files the Section views carry rows and weights but nil refs — the
	// decode cache serves refs from its arenas instead.
	v3      []v3Sec
	cacheMu sync.Mutex
	cache   *DecodeCache
}

// Open maps path and validates it: header, partition starts, section table,
// per-machine row arrays (monotone prefix sums agreeing with the header edge
// counts), and a full streaming scan of every ref (local refs in range,
// remote refs naming a real machine slot). The ref scan reads the whole file
// once sequentially; the touched pages are advised away afterwards so a
// fresh Open starts with a clean resident set.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, unmap, err := mapRO(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	sf := &File{path: path, data: data, unmap: unmap, pageSize: int64(os.Getpagesize())}
	if err := sf.validate(); err != nil {
		unmap() //nolint:errcheck
		return nil, err
	}
	// Drop what the validation scan faulted in.
	advise(sf.data, advDontNeed)
	return sf, nil
}

func (sf *File) validate() error {
	hdr, err := parseHeader(sf.data)
	if err != nil {
		return err
	}
	sf.hdr = hdr
	p, n := hdr.p, int64(hdr.numNodes)
	sf.starts = make([]uint32, p+1)
	for i := 0; i <= p; i++ {
		sf.starts[i] = leU32(sf.data[headerFixedBytes+4*i:])
	}
	if sf.starts[0] != 0 || int64(sf.starts[p]) != n {
		return fmt.Errorf("store: starts [%d..%d] do not cover [0, %d)", sf.starts[0], sf.starts[p], n)
	}
	for i := 1; i <= p; i++ {
		if sf.starts[i] < sf.starts[i-1] {
			return fmt.Errorf("store: starts not monotone at machine %d", i)
		}
	}
	if hdr.version == Version3 {
		return sf.validateV3()
	}

	size := int64(len(sf.data))
	tbl := tableOffset(p)
	next := dataOffset(p)
	weighted := hdr.flags&FlagWeighted != 0
	sf.secs = make([]Section, p)
	sf.degMass = make([]int64, p)
	var sumOut, sumIn int64
	// Sequential validation advice: the rows + refs scan below walks the file
	// front to back.
	advise(sf.data, advSequential)
	for mach := 0; mach < p; mach++ {
		numLocal := int64(sf.starts[mach+1] - sf.starts[mach])
		sec := &sf.secs[mach]
		field := func(i int) int64 { return int64(leU64(sf.data[tbl+int64(8*(secFieldCount*mach+i)):])) }

		take := func(name string, off, count int64) ([]int64, error) {
			if off != next {
				return nil, fmt.Errorf("store: machine %d %s at offset %d, expected %d", mach, name, off, next)
			}
			if off%8 != 0 {
				return nil, fmt.Errorf("store: machine %d %s offset %d not 8-byte aligned", mach, name, off)
			}
			end := off + 8*count
			if end < off || end > size {
				return nil, fmt.Errorf("store: machine %d %s [%d, %d) exceeds file size %d (truncated?)", mach, name, off, end, size)
			}
			next = end
			if count == 0 {
				return nil, nil
			}
			return unsafe.Slice((*int64)(unsafe.Pointer(&sf.data[off])), count), nil
		}
		rowsAndRefs := func(rowsName, refsName string, rowsField, refsField, wField int) (rows, refs []int64, weights []float64, m int64, err error) {
			rows, err = take(rowsName, field(rowsField), numLocal+1)
			if err != nil {
				return
			}
			if rows[0] != 0 {
				err = fmt.Errorf("store: machine %d %s[0] = %d, want 0", mach, rowsName, rows[0])
				return
			}
			for u := int64(1); u <= numLocal; u++ {
				if rows[u] < rows[u-1] {
					err = fmt.Errorf("store: machine %d %s not monotone at %d", mach, rowsName, u)
					return
				}
			}
			m = rows[numLocal]
			refs, err = take(refsName, field(refsField), m)
			if err != nil {
				return
			}
			if weighted {
				var ws []int64
				ws, err = take(refsName+" weights", field(wField), m)
				if err != nil {
					return
				}
				if m > 0 {
					weights = unsafe.Slice((*float64)(unsafe.Pointer(&ws[0])), m)
				}
			} else if field(wField) != 0 {
				err = fmt.Errorf("store: machine %d has a weight offset in an unweighted file", mach)
				return
			}
			if err = sf.checkRefs(refs, mach); err != nil {
				return
			}
			return
		}

		var mOut, mIn int64
		if sec.OutRows, sec.OutRefs, sec.OutWeights, mOut, err = rowsAndRefs("outRows", "outRefs", 0, 1, 2); err != nil {
			return err
		}
		if sec.InRows, sec.InRefs, sec.InWeights, mIn, err = rowsAndRefs("inRows", "inRefs", 3, 4, 5); err != nil {
			return err
		}
		sumOut += mOut
		sumIn += mIn
		sf.degMass[mach] = mOut + mIn
	}
	if sumOut != int64(hdr.numEdges) || sumIn != int64(hdr.numEdges) {
		return fmt.Errorf("store: section edge counts (out=%d in=%d) disagree with header (%d)", sumOut, sumIn, hdr.numEdges)
	}
	if next != size {
		return fmt.Errorf("store: %d trailing bytes after last section", size-next)
	}
	return nil
}

// checkRefs verifies every ref resolves: local refs inside the owner's
// range, remote refs naming a real (machine, offset) slot. A corrupt ref
// would index property columns out of bounds on the unchecked kernel hot
// path, so the scan runs at Open rather than per access.
func (sf *File) checkRefs(refs []int64, mach int) error {
	numLocal := int64(sf.starts[mach+1] - sf.starts[mach])
	for i, ref := range refs {
		if ref >= 0 {
			if ref >= numLocal {
				return fmt.Errorf("store: machine %d ref %d: local index %d out of range [0, %d)", mach, i, ref, numLocal)
			}
			continue
		}
		rm, off := unpackRemoteRef(ref)
		if rm < 0 || rm >= sf.hdr.p {
			return fmt.Errorf("store: machine %d ref %d: remote machine %d out of range", mach, i, rm)
		}
		if int64(off) >= int64(sf.starts[rm+1]-sf.starts[rm]) {
			return fmt.Errorf("store: machine %d ref %d: remote offset %d out of machine %d's range", mach, i, off, rm)
		}
	}
	return nil
}

// f64View returns a float64 slice aliasing count values at byte offset off.
func f64View(data []byte, off, count int64) []float64 {
	return unsafe.Slice((*float64)(unsafe.Pointer(&data[off])), count)
}

// Close unmaps the file (and frees the decode cache's arenas, if one was
// created). Section views and cache refs must not be used afterwards.
func (sf *File) Close() error {
	sf.cacheMu.Lock()
	if sf.cache != nil {
		sf.cache.free()
		sf.cache = nil
	}
	sf.cacheMu.Unlock()
	if sf.unmap == nil {
		return nil
	}
	u := sf.unmap
	sf.unmap = nil
	sf.data = nil
	sf.secs = nil
	sf.v3 = nil
	return u()
}

// Path returns the file's path.
func (sf *File) Path() string { return sf.path }

// NumNodes returns the graph's node count.
func (sf *File) NumNodes() int { return int(sf.hdr.numNodes) }

// NumEdges returns the graph's directed edge count.
func (sf *File) NumEdges() int64 { return int64(sf.hdr.numEdges) }

// NumMachines returns the partition count P the file was written for.
func (sf *File) NumMachines() int { return sf.hdr.p }

// Weighted reports whether the file carries edge weights.
func (sf *File) Weighted() bool { return sf.hdr.flags&FlagWeighted != 0 }

// Compressed reports whether the file's edge sections are codec-encoded
// (version 3). Compressed files serve refs through a DecodeCache; their
// Section views carry rows and weights but nil refs.
func (sf *File) Compressed() bool { return sf.hdr.version == Version3 }

// Layout returns the ownership layout stored in the file.
func (sf *File) Layout() partition.Layout {
	starts := make([]uint32, len(sf.starts))
	copy(starts, sf.starts)
	return partition.Layout{NumMachines: sf.hdr.p, Starts: starts}
}

// Section returns machine mach's zero-copy view. The slices alias the
// mapping and are read-only; writing through them faults.
func (sf *File) Section(mach int) Section { return sf.secs[mach] }

// DegreeMass returns each machine's in+out degree sum under the file's
// layout — the same static load estimate partition.Layout.DegreeMass
// computes from an in-memory graph.
func (sf *File) DegreeMass() []int64 {
	out := make([]int64, len(sf.degMass))
	copy(out, sf.degMass)
	return out
}

// FileBytes returns the total on-disk size.
func (sf *File) FileBytes() int64 { return int64(len(sf.data)) }
