package store

import (
	"fmt"
	"sort"

	"repro/internal/codec"
)

// Orientation indices into a compressed section, used by DecodeCache claims.
const (
	OrientOut = 0
	OrientIn  = 1
)

// v3Orient is one machine's decoded metadata for one orientation of a
// compressed (version 3) file: heap row prefix sums, the block index, and a
// view of the compressed refs blob. The refs themselves are never
// materialized here — the DecodeCache inflates blocks on demand into an
// anonymous arena.
type v3Orient struct {
	rows     []int64 // numLocal+1 prefix sums, decoded from compRows
	firstRow []int64 // blockCount+1 entries; firstRow[blockCount] == numLocal
	offs     []int64 // blockCount+1 byte offsets into comp; last == len(comp)
	comp     []byte  // compRefs view, aliasing the mapping
	weights  []float64
	edges    int64
}

type v3Sec struct{ o [2]v3Orient }

// validateV3 checks a version-3 file the way validate checks v2: sequential
// monotone offsets, aligned arrays, and a full strict decode of every block
// — torn, overlong, trailing, or out-of-range block bytes are rejected at
// Open, exactly like the wire codec rejects corrupt frames, so the runtime
// decode path never meets a byte the validator has not already accepted.
func (sf *File) validateV3() error {
	hdr := sf.hdr
	p := hdr.p
	size := int64(len(sf.data))
	tbl := tableOffset(p)
	next := dataOffset(p)
	weighted := hdr.flags&FlagWeighted != 0
	sf.v3 = make([]v3Sec, p)
	sf.secs = make([]Section, p)
	sf.degMass = make([]int64, p)
	var sumOut, sumIn int64
	var scratch []int64
	advise(sf.data, advSequential)
	for mach := 0; mach < p; mach++ {
		numLocal := int64(sf.starts[mach+1] - sf.starts[mach])
		field := func(i int) int64 { return int64(leU64(sf.data[tbl+int64(8*(secFieldCount*mach+i)):])) }

		takeWeights := func(name string, off, count int64) ([]float64, error) {
			if off != next {
				return nil, fmt.Errorf("store: machine %d %s at offset %d, expected %d", mach, name, off, next)
			}
			if off%8 != 0 {
				return nil, fmt.Errorf("store: machine %d %s offset %d not 8-byte aligned", mach, name, off)
			}
			end := off + 8*count
			if end < off || end > size {
				return nil, fmt.Errorf("store: machine %d %s [%d, %d) exceeds file size %d (truncated?)", mach, name, off, end, size)
			}
			next = end
			if count == 0 {
				return nil, nil
			}
			return f64View(sf.data, off, count), nil
		}

		for orient := 0; orient < 2; orient++ {
			blobField, wField, oName := 0, 2, "out"
			if orient == OrientIn {
				blobField, wField, oName = 3, 5, "in"
			}
			o := &sf.v3[mach].o[orient]
			var err error
			scratch, err = sf.parseV3Blob(o, mach, orient, numLocal, field(blobField), field(blobField+1), &next, scratch)
			if err != nil {
				return err
			}
			if weighted {
				if o.weights, err = takeWeights(oName+" weights", field(wField), o.edges); err != nil {
					return err
				}
			} else if field(wField) != 0 {
				return fmt.Errorf("store: machine %d has a weight offset in an unweighted file", mach)
			}
		}

		out, in := &sf.v3[mach].o[OrientOut], &sf.v3[mach].o[OrientIn]
		sumOut += out.edges
		sumIn += in.edges
		sf.degMass[mach] = out.edges + in.edges
		sf.secs[mach] = Section{
			OutRows: out.rows, OutWeights: out.weights,
			InRows: in.rows, InWeights: in.weights,
		}
	}
	if sumOut != int64(hdr.numEdges) || sumIn != int64(hdr.numEdges) {
		return fmt.Errorf("store: section edge counts (out=%d in=%d) disagree with header (%d)", sumOut, sumIn, hdr.numEdges)
	}
	if next != size {
		return fmt.Errorf("store: %d trailing bytes after last section", size-next)
	}
	return nil
}

// parseV3Blob validates one orientation blob at offset off and fills o.
// scratch is threaded through for block-decode reuse.
func (sf *File) parseV3Blob(o *v3Orient, mach, orient int, numLocal, off, blobLen int64, next *int64, scratch []int64) ([]int64, error) {
	size := int64(len(sf.data))
	bad := func(format string, args ...any) ([]int64, error) {
		return scratch, fmt.Errorf("store: machine %d orient %d blob: %s", mach, orient, fmt.Sprintf(format, args...))
	}
	if off != *next {
		return bad("at offset %d, expected %d", off, *next)
	}
	if off%8 != 0 {
		return bad("offset %d not 8-byte aligned", off)
	}
	end := off + blobLen
	if blobLen < v3BlobHeaderBytes || end < off || end > size {
		return bad("[%d, %d) exceeds file size %d (truncated?)", off, end, size)
	}
	rowBytes := int64(leU64(sf.data[off:]))
	blockCount := int64(leU64(sf.data[off+8:]))
	refBytes := int64(leU64(sf.data[off+16:]))
	if rowBytes < 0 || refBytes < 0 || blockCount < 0 ||
		rowBytes > blobLen || refBytes > blobLen || blockCount > blobLen {
		return bad("implausible sub-header (rowBytes=%d blocks=%d refBytes=%d)", rowBytes, blockCount, refBytes)
	}
	if want := v3BlobHeaderBytes + pad8(rowBytes) + 16*(blockCount+1) + pad8(refBytes); want != blobLen {
		return bad("length %d disagrees with sub-header (want %d)", blobLen, want)
	}

	// compRows: numLocal strictly canonical uvarint degrees.
	rowStart := off + v3BlobHeaderBytes
	rowBlob := sf.data[rowStart : rowStart+rowBytes]
	o.rows = make([]int64, numLocal+1)
	consumed := 0
	for u := int64(0); u < numLocal; u++ {
		d, k := codec.Uvarint(rowBlob[consumed:])
		if k <= 0 {
			return bad("corrupt degree varint at row %d", u)
		}
		consumed += k
		o.rows[u+1] = o.rows[u] + int64(d)
		if o.rows[u+1] < o.rows[u] {
			return bad("degree overflow at row %d", u)
		}
	}
	if int64(consumed) != rowBytes {
		return bad("%d trailing compRows bytes", rowBytes-int64(consumed))
	}
	for _, b := range sf.data[rowStart+rowBytes : rowStart+pad8(rowBytes)] {
		if b != 0 {
			return bad("non-zero compRows padding")
		}
	}
	o.edges = o.rows[numLocal]

	// Block index.
	idxStart := rowStart + pad8(rowBytes)
	o.firstRow = make([]int64, blockCount+1)
	o.offs = make([]int64, blockCount+1)
	for b := int64(0); b <= blockCount; b++ {
		o.firstRow[b] = int64(leU64(sf.data[idxStart+16*b:]))
		o.offs[b] = int64(leU64(sf.data[idxStart+16*b+8:]))
	}
	if o.firstRow[blockCount] != numLocal || o.offs[blockCount] != refBytes {
		return bad("block index sentinel {%d, %d}, want {%d, %d}",
			o.firstRow[blockCount], o.offs[blockCount], numLocal, refBytes)
	}
	if o.edges == 0 {
		if blockCount != 0 || refBytes != 0 {
			return bad("edgeless section with %d blocks, %d ref bytes", blockCount, refBytes)
		}
	} else {
		if blockCount == 0 {
			return bad("%d edges but no blocks", o.edges)
		}
		if o.firstRow[0] != 0 || o.offs[0] != 0 {
			return bad("first block starts at {row %d, byte %d}, want {0, 0}", o.firstRow[0], o.offs[0])
		}
	}
	for b := int64(1); b <= blockCount; b++ {
		if o.firstRow[b] <= o.firstRow[b-1] || o.offs[b] <= o.offs[b-1] {
			return bad("block index not strictly increasing at block %d", b)
		}
	}

	// compRefs: strictly decode every block (ids canonical and in range,
	// exact byte consumption per block).
	compStart := idxStart + 16*(blockCount+1)
	o.comp = sf.data[compStart : compStart+refBytes]
	for _, b := range sf.data[compStart+refBytes : compStart+pad8(refBytes)] {
		if b != 0 {
			return bad("non-zero compRefs padding")
		}
	}
	var err error
	for b := 0; b < int(blockCount); b++ {
		if scratch, err = sf.decodeV3Block(mach, orient, b, nil, scratch); err != nil {
			return scratch, err
		}
	}
	*next = end
	return scratch, nil
}

// decodeV3Block strictly decodes block b of (mach, orient). With refs non-nil
// (the decode cache's arena view, indexed absolutely by o.rows), decoded
// global ids are converted to the engine's ref encoding in place; with refs
// nil the block is validated only, using scratch as the throwaway buffer.
// Every path enforces canonical varints, ids in [0, numNodes), and exact
// consumption of the block's byte range.
func (sf *File) decodeV3Block(mach, orient, b int, refs []int64, scratch []int64) ([]int64, error) {
	o := &sf.v3[mach].o[orient]
	rlo, rhi := o.firstRow[b], o.firstRow[b+1]
	comp := o.comp[o.offs[b]:o.offs[b+1]]
	n := int64(sf.hdr.numNodes)
	lo, hi := int64(sf.starts[mach]), int64(sf.starts[mach+1])
	off := 0
	for u := rlo; u < rhi; u++ {
		cnt := int(o.rows[u+1] - o.rows[u])
		if cnt == 0 {
			continue
		}
		var dst []int64
		if refs != nil {
			s := o.rows[u]
			dst = refs[s:s:o.rows[u+1]]
		} else {
			if cap(scratch) < cnt {
				scratch = make([]int64, 0, cnt)
			}
			dst = scratch[:0]
		}
		vals, k, ok := codec.DecodeZigZagDeltaRow(comp[off:], cnt, n, dst)
		if !ok {
			return scratch, fmt.Errorf("store: machine %d orient %d block %d row %d: corrupt compressed row", mach, orient, b, u)
		}
		off += k
		if refs != nil {
			for i, v := range vals {
				vals[i] = sf.refFromGlobal(v, lo, hi)
			}
		} else {
			scratch = vals[:0]
		}
	}
	if off != len(comp) {
		return scratch, fmt.Errorf("store: machine %d orient %d block %d: %d trailing block bytes", mach, orient, b, len(comp)-off)
	}
	return scratch, nil
}

// refFromGlobal converts a global node id to machine [lo, hi)'s ref
// encoding: owned ids become local indices, everything else a packed remote
// (machine, offset). The id was range-checked by the block decoder, so the
// owner search always lands.
func (sf *File) refFromGlobal(v, lo, hi int64) int64 {
	if v >= lo && v < hi {
		return v - lo
	}
	owner := sort.Search(sf.hdr.p, func(i int) bool { return int64(sf.starts[i+1]) > v })
	return packRemoteRef(owner, uint32(v)-sf.starts[owner])
}

// blockRange returns the half-open block index range covering rows
// [rowLo, rowHi) of (mach, orient); empty when the row span carries no edges.
func (sf *File) blockRange(mach, orient int, rowLo, rowHi int64) (int, int) {
	o := &sf.v3[mach].o[orient]
	nb := len(o.firstRow) - 1
	if nb == 0 || rowLo >= rowHi || o.rows[rowHi]-o.rows[rowLo] == 0 {
		return 0, 0
	}
	// First block whose row range extends past rowLo.
	blo := sort.Search(nb, func(b int) bool { return o.firstRow[b+1] > rowLo })
	// First block starting at or past rowHi.
	bhi := sort.Search(nb, func(b int) bool { return o.firstRow[b] >= rowHi })
	if bhi < blo {
		bhi = blo
	}
	return blo, bhi
}
