package store

// Sizing is the store's sizing report for a graph: what the CSR v2 file
// occupies on disk and what an in-memory engine load of the same graph would
// pin resident. The server's admission memory gate budgets runs against
// EstimatedResidentMB when the client does not declare its own cap.
type Sizing struct {
	// FileBytes is the CSR v2 file size (header + sections).
	FileBytes int64
	// InMemoryBytes estimates the resident set of an in-memory load: the
	// shared graph (both CSR orientations, 4-byte columns), the per-machine
	// pre-resolved 8-byte refs in both orientations, degree/chunk metadata,
	// and an allowance for a few property columns.
	InMemoryBytes int64
}

// EstimatedResidentMB returns InMemoryBytes in mebibytes, rounded up, never
// below 1.
func (s Sizing) EstimatedResidentMB() int64 {
	mb := (s.InMemoryBytes + (1 << 20) - 1) >> 20
	if mb < 1 {
		mb = 1
	}
	return mb
}

// SizeOf reports the sizing for a graph with n nodes and m directed edges.
// The file size assumes the single-section-per-machine CSR v2 layout and is
// exact for any machine count (rows arrays add 8*(n+p) bytes total — the p
// term is folded into the node term here, a <0.1% overcount).
func SizeOf(n int, m int64, p int, weighted bool) Sizing {
	wf := int64(0)
	if weighted {
		wf = 1
	}
	var s Sizing
	// Per orientation: rows 8*(n+p), refs 8*m, weights 8*m if weighted.
	s.FileBytes = dataOffset(p) + 2*(8*int64(n+p)+8*m+wf*8*m)
	// Graph: rows 8*(n+1) and 4-byte cols per orientation (+8-byte weights);
	// engine: 8-byte refs per orientation, rebased rows, both-rows, degrees
	// (2*4 bytes), and ~3 8-byte property columns.
	s.InMemoryBytes = 2*(8*int64(n+1)+4*m+wf*8*m) + // shared graph
		2*(8*m+wf*8*m) + 3*8*int64(n) + // local stores
		8*int64(n) + 24*int64(n) // bothRows + degrees + property allowance
	return s
}

// Sizing returns the open file's sizing report.
func (sf *File) Sizing() Sizing {
	s := SizeOf(sf.NumNodes(), sf.NumEdges(), sf.NumMachines(), sf.Weighted())
	s.FileBytes = sf.FileBytes() // exact
	return s
}
