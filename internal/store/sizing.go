package store

// Sizing is the store's sizing report for a graph: what the CSR file
// occupies on disk (raw and compressed) and what an in-memory engine load of
// the same graph would pin resident. The server's admission memory gate
// budgets runs against EstimatedResidentMB when the client does not declare
// its own cap.
type Sizing struct {
	// FileBytes is the raw CSR v2 file size (header + sections). Exact.
	FileBytes int64
	// CompressedFileBytes estimates the same graph's compressed (v3) file
	// size: varint degrees plus zigzag-delta varint refs plus the block
	// index, with weights uncompressed. It is an upper-bound-leaning
	// estimate from the id width alone — real delta streams compress
	// further. File.Sizing on an open v3 file replaces it with the exact
	// size.
	CompressedFileBytes int64
	// DecodeCacheBytes is the decode-cache budget a compressed run would
	// add to its resident set: the default budget, capped at what a full
	// decode of both orientations could ever use.
	DecodeCacheBytes int64
	// InMemoryBytes estimates the resident set of an in-memory load: the
	// shared graph (both CSR orientations, 4-byte columns), the per-machine
	// pre-resolved 8-byte refs in both orientations, degree/chunk metadata,
	// and the requested algorithm's property columns.
	InMemoryBytes int64
}

// EstimatedResidentMB returns InMemoryBytes in mebibytes, rounded up, never
// below 1.
func (s Sizing) EstimatedResidentMB() int64 {
	mb := (s.InMemoryBytes + (1 << 20) - 1) >> 20
	if mb < 1 {
		mb = 1
	}
	return mb
}

// varintLen returns the LEB128 byte length of v.
func varintLen(v uint64) int64 {
	n := int64(1)
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// SizeOf reports the sizing for a graph with n nodes and m directed edges,
// running an algorithm that keeps propCols 8-byte property columns live (use
// 3 — the historical allowance — when the algorithm is unknown). The raw
// file size assumes the single-section-per-machine CSR v2 layout and is
// exact for any machine count (rows arrays add 8*(n+p) bytes total — the p
// term is folded into the node term here, a <0.1% overcount).
func SizeOf(n int, m int64, p int, weighted bool, propCols int) Sizing {
	wf := int64(0)
	if weighted {
		wf = 1
	}
	var s Sizing
	// Per orientation: rows 8*(n+p), refs 8*m, weights 8*m if weighted.
	s.FileBytes = dataOffset(p) + 2*(8*int64(n+p)+8*m+wf*8*m)
	// Compressed refs: a zigzag-delta gap can span the whole id range, so
	// budget the varint width of 2n per edge; degrees are mostly 1-2 byte
	// varints; the block index adds 16 bytes per ~v3BlockTargetEdges edges.
	perRef := varintLen(uint64(2 * int64(n)))
	s.CompressedFileBytes = dataOffset(p) +
		2*(v3BlobHeaderBytes*int64(p)+2*int64(n)+perRef*m+16*(m/v3BlockTargetEdges+int64(p)+1)) +
		2*wf*8*m
	s.DecodeCacheBytes = DefaultDecodeCacheBytes
	if full := 2 * 8 * m; full < s.DecodeCacheBytes {
		s.DecodeCacheBytes = full
	}
	// Graph: rows 8*(n+1) and 4-byte cols per orientation (+8-byte weights);
	// engine: 8-byte refs per orientation, rebased rows, both-rows, degrees
	// (2*4 bytes), and the algorithm's property columns.
	s.InMemoryBytes = 2*(8*int64(n+1)+4*m+wf*8*m) + // shared graph
		2*(8*m+wf*8*m) + 3*8*int64(n) + // local stores
		8*int64(n) + int64(propCols)*8*int64(n) // bothRows + degrees + properties
	return s
}

// Sizing returns the open file's sizing report with propCols live property
// columns: the side matching the file's own format (raw or compressed) is
// exact, the other stays estimated.
func (sf *File) Sizing(propCols int) Sizing {
	s := SizeOf(sf.NumNodes(), sf.NumEdges(), sf.NumMachines(), sf.Weighted(), propCols)
	if sf.Compressed() {
		s.CompressedFileBytes = sf.FileBytes() // exact
	} else {
		s.FileBytes = sf.FileBytes() // exact
	}
	return s
}
