package store

import (
	"fmt"
	"math"
	"os"
)

// EdgeStream is a re-runnable source of directed edges. Sweep must emit the
// same edges in the same order on every call — the streaming writer sweeps
// the stream several times (degree counting, then once per scatter bucket)
// and bucket contents interleave only correctly when the order is stable.
// Deterministic generators (fixed-shard RMAT/uniform) satisfy this for free.
type EdgeStream interface {
	// NumNodes is the node count; every emitted endpoint must be < NumNodes.
	NumNodes() int
	// Weighted reports whether Sweep emits meaningful weights.
	Weighted() bool
	// Sweep calls emit for every directed edge, in a stable order.
	Sweep(emit func(u, v uint32, w float64))
}

// StreamOptions configures WriteStream.
type StreamOptions struct {
	// Machines is the partition count P baked into the file. Must match the
	// cluster that will load it. Default 1.
	Machines int
	// BucketBytes bounds the writer's dirty working set per scatter bucket.
	// Smaller buckets mean more stream sweeps but a lower peak RSS. Default
	// 64 MiB.
	BucketBytes int64
	// Compress emits a compressed (v3) file: the raw v2 file streams to a
	// temp next to path, compresses through CompressFile's sequential
	// O(nodes + block) pass, and the temp is removed. Peak memory stays
	// O(nodes + bucket).
	Compress bool
}

// WriteStream emits a CSR v2 file from an edge stream without ever
// materializing the graph: O(N) memory for degree prefixes plus one scatter
// bucket, never O(M). Three logical passes:
//
//  1. one sweep counts out/in degrees, fixing the edge-balanced layout
//     (mirroring partition.Compute, so the cut matches an in-memory load)
//     and every row array;
//  2. out-refs scatter in node-range buckets sized to BucketBytes — one
//     sweep per bucket, writing refs through a shared RW mapping and
//     advising each completed bucket's pages away;
//  3. in-refs derive from the already-written out sections, read in global
//     source order — exactly the canonical transpose order the in-memory
//     builder uses — so the streamed file is byte-identical to
//     WriteGraph of the same graph.
func WriteStream(path string, es EdgeStream, opt StreamOptions) error {
	if opt.Compress {
		tmp, err := rawTemp(path)
		if err != nil {
			return err
		}
		defer os.Remove(tmp) //nolint:errcheck
		raw := opt
		raw.Compress = false
		if err := WriteStream(tmp, es, raw); err != nil {
			return err
		}
		return CompressFile(path, tmp)
	}
	n := es.NumNodes()
	if n <= 0 {
		return fmt.Errorf("store: stream has no nodes")
	}
	if n > 1<<32 {
		return fmt.Errorf("store: stream node count %d exceeds the 32-bit id space", n)
	}
	p := opt.Machines
	if p == 0 {
		p = 1
	}
	if p < 1 || p > maxMachines {
		return fmt.Errorf("store: machine count %d out of range [1, %d]", p, maxMachines)
	}
	bucketBytes := opt.BucketBytes
	if bucketBytes <= 0 {
		bucketBytes = 64 << 20
	}
	weighted := es.Weighted()

	// Pass 1: degrees. int32 per node bounds writer memory at 8 bytes/node
	// here plus 16 bytes/node of prefixes below.
	outDeg := make([]int32, n)
	inDeg := make([]int32, n)
	var m int64
	var streamErr error
	es.Sweep(func(u, v uint32, _ float64) {
		if int(u) >= n || int(v) >= n {
			if streamErr == nil {
				streamErr = fmt.Errorf("store: stream edge (%d, %d) out of range [0, %d)", u, v, n)
			}
			return
		}
		outDeg[u]++
		inDeg[v]++
		m++
	})
	if streamErr != nil {
		return streamErr
	}

	starts := layoutFromDegrees(outDeg, inDeg, p)
	ownerArr := make([]uint16, n)
	for mach := 0; mach < p; mach++ {
		for u := starts[mach]; u < starts[mach+1]; u++ {
			ownerArr[u] = uint16(mach)
		}
	}
	outPrefix := prefixFromDeg(outDeg)
	inPrefix := prefixFromDeg(inDeg)
	outDeg, inDeg = nil, nil

	lay := newFileLayout(n, m, p, weighted, starts,
		func(mach int) int64 { return outPrefix[starts[mach+1]] - outPrefix[starts[mach]] },
		func(mach int) int64 { return inPrefix[starts[mach+1]] - inPrefix[starts[mach]] })

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(lay.total); err != nil {
		return err
	}
	data, closeMap, err := mapRW(f, lay.total)
	if err != nil {
		return fmt.Errorf("store: mmap %s for writing: %w", path, err)
	}
	mapDone := false
	defer func() {
		if !mapDone {
			closeMap() //nolint:errcheck
		}
	}()

	copy(data, lay.headerBytes())
	// Row arrays: rebased prefix sums, written straight into the mapping.
	for mach := 0; mach < p; mach++ {
		lo, hi := int64(starts[mach]), int64(starts[mach+1])
		for u := lo; u <= hi; u++ {
			putU64(data[lay.offs[mach][0]+8*(u-lo):], uint64(outPrefix[u]-outPrefix[lo]))
			putU64(data[lay.offs[mach][3]+8*(u-lo):], uint64(inPrefix[u]-inPrefix[lo]))
		}
	}

	sw := &streamWriter{
		data: data, lay: lay, starts: starts, ownerArr: ownerArr,
		outPrefix: outPrefix, inPrefix: inPrefix, weighted: weighted,
		bucketBytes: bucketBytes,
	}
	if err := sw.scatterOut(es); err != nil {
		return err
	}
	sw.scatterIn()
	advise(data, advDontNeed)
	mapDone = true
	if err := closeMap(); err != nil {
		return err
	}
	return f.Sync()
}

// layoutFromDegrees mirrors partition.Compute's EdgeBalanced walk (including
// the zero-edge vertex fallback and the monotonicity clamp) over streaming
// degree counts, so a streamed file and an in-memory Load cut identically.
func layoutFromDegrees(outDeg, inDeg []int32, p int) []uint32 {
	n := len(outDeg)
	starts := make([]uint32, p+1)
	starts[p] = uint32(n)
	var total int64
	for u := 0; u < n; u++ {
		total += int64(outDeg[u]) + int64(inDeg[u])
	}
	if total == 0 {
		for mach := 1; mach < p; mach++ {
			starts[mach] = uint32(mach * n / p)
		}
	} else {
		var acc int64
		next := 1
		for u := 0; u < n && next < p; u++ {
			acc += int64(outDeg[u]) + int64(inDeg[u])
			for next < p && acc >= int64(next)*total/int64(p) {
				starts[next] = uint32(u + 1)
				next++
			}
		}
		for ; next < p; next++ {
			starts[next] = uint32(n)
		}
	}
	for mach := 1; mach <= p; mach++ {
		if starts[mach] < starts[mach-1] {
			starts[mach] = starts[mach-1]
		}
	}
	return starts
}

func prefixFromDeg(deg []int32) []int64 {
	prefix := make([]int64, len(deg)+1)
	for u, d := range deg {
		prefix[u+1] = prefix[u] + int64(d)
	}
	return prefix
}

// streamWriter holds the scatter state shared by the out and in passes.
type streamWriter struct {
	data        []byte
	lay         *fileLayout
	starts      []uint32
	ownerArr    []uint16
	outPrefix   []int64
	inPrefix    []int64
	weighted    bool
	bucketBytes int64
}

// buckets cuts [0, n) into node ranges whose scatter bytes (8 per edge, 16
// weighted) stay under the budget, always at least one node per bucket.
func (sw *streamWriter) buckets(prefix []int64) [][2]int {
	n := len(sw.ownerArr)
	per := int64(8)
	if sw.weighted {
		per = 16
	}
	var out [][2]int
	lo := 0
	for lo < n {
		hi := lo + 1
		for hi < n && (prefix[hi+1]-prefix[lo])*per <= sw.bucketBytes {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// encodeTo resolves global node v into machine mach's ref encoding.
func (sw *streamWriter) encodeTo(v uint32, mach int) int64 {
	if v >= sw.starts[mach] && v < sw.starts[mach+1] {
		return int64(v - sw.starts[mach])
	}
	owner := int(sw.ownerArr[v])
	return packRemoteRef(owner, v-sw.starts[owner])
}

// scatterOut fills every machine's outRefs (and outWeights) with one stream
// sweep per bucket.
func (sw *streamWriter) scatterOut(es EdgeStream) error {
	var streamErr error
	n := len(sw.ownerArr)
	for _, b := range sw.buckets(sw.outPrefix) {
		bLo, bHi := b[0], b[1]
		cnt := make([]int32, bHi-bLo)
		es.Sweep(func(u, v uint32, w float64) {
			if int(u) >= n || int(v) >= n {
				if streamErr == nil {
					streamErr = fmt.Errorf("store: stream emitted edge (%d, %d) out of range on a later sweep", u, v)
				}
				return
			}
			if int(u) < bLo || int(u) >= bHi {
				return
			}
			mach := int(sw.ownerArr[u])
			idx := sw.outPrefix[u] - sw.outPrefix[sw.starts[mach]] + int64(cnt[int(u)-bLo])
			cnt[int(u)-bLo]++
			putU64(sw.data[sw.lay.offs[mach][1]+8*idx:], uint64(sw.encodeTo(v, mach)))
			if sw.weighted {
				putU64(sw.data[sw.lay.offs[mach][2]+8*idx:], math.Float64bits(w))
			}
		})
		if streamErr != nil {
			return streamErr
		}
		sw.releaseNodeRange(bLo, bHi, sw.outPrefix, 1, 2)
	}
	return nil
}

// scatterIn derives the in-orientation from the out sections already on
// disk: scanning machines in order visits sources in ascending global id,
// reproducing the in-memory builder's canonical transpose order exactly.
func (sw *streamWriter) scatterIn() {
	p := sw.lay.p
	for _, b := range sw.buckets(sw.inPrefix) {
		bLo, bHi := b[0], b[1]
		cnt := make([]int32, bHi-bLo)
		for mach := 0; mach < p; mach++ {
			lo := int64(sw.starts[mach])
			refsOff := sw.lay.offs[mach][1]
			for u := lo; u < int64(sw.starts[mach+1]); u++ {
				for k := sw.outPrefix[u] - sw.outPrefix[lo]; k < sw.outPrefix[u+1]-sw.outPrefix[lo]; k++ {
					ref := int64(leU64(sw.data[refsOff+8*k:]))
					var v uint32
					if ref >= 0 {
						v = sw.starts[mach] + uint32(ref)
					} else {
						rm, off := unpackRemoteRef(ref)
						v = sw.starts[rm] + off
					}
					if int(v) < bLo || int(v) >= bHi {
						continue
					}
					vm := int(sw.ownerArr[v])
					idx := sw.inPrefix[v] - sw.inPrefix[sw.starts[vm]] + int64(cnt[int(v)-bLo])
					cnt[int(v)-bLo]++
					putU64(sw.data[sw.lay.offs[vm][4]+8*idx:], uint64(sw.encodeTo(uint32(u), vm)))
					if sw.weighted {
						copy(sw.data[sw.lay.offs[vm][5]+8*idx:][:8], sw.data[sw.lay.offs[mach][2]+8*k:][:8])
					}
				}
			}
			// Drop the out pages this machine scan faulted back in; they stay
			// in the page cache for the next bucket's scan.
			adviseRange(sw.data, refsOff, 8*sw.lay.mOut[mach], advDontNeed)
			if sw.weighted {
				adviseRange(sw.data, sw.lay.offs[mach][2], 8*sw.lay.mOut[mach], advDontNeed)
			}
		}
		sw.releaseNodeRange(bLo, bHi, sw.inPrefix, 4, 5)
	}
}

// releaseNodeRange advises away the ref (and weight) pages that global node
// range [bLo, bHi) occupies, per overlapped machine section.
func (sw *streamWriter) releaseNodeRange(bLo, bHi int, prefix []int64, refField, wField int) {
	for mach := 0; mach < sw.lay.p; mach++ {
		lo, hi := int(sw.starts[mach]), int(sw.starts[mach+1])
		aLo, aHi := max(bLo, lo), min(bHi, hi)
		if aLo >= aHi {
			continue
		}
		base := prefix[lo]
		start, end := prefix[aLo]-base, prefix[aHi]-base
		if end <= start {
			continue
		}
		adviseRange(sw.data, sw.lay.offs[mach][refField]+8*start, 8*(end-start), advDontNeed)
		if sw.weighted {
			adviseRange(sw.data, sw.lay.offs[mach][wField]+8*start, 8*(end-start), advDontNeed)
		}
	}
}

// adviseRange page-aligns [off, off+length) within data and applies advice.
func adviseRange(data []byte, off, length int64, advice int) {
	if length <= 0 || len(data) == 0 {
		return
	}
	ps := int64(os.Getpagesize())
	aOff := off &^ (ps - 1)
	aEnd := (off + length + ps - 1) &^ (ps - 1)
	if aEnd > int64(len(data)) {
		aEnd = int64(len(data))
	}
	if aEnd > aOff {
		advise(data[aOff:aEnd], advice)
	}
}
