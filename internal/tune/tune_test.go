package tune

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestThreadsPicksAProbedConfig(t *testing.T) {
	g, err := graph.RMAT(9, 8, graph.TwitterLike(), 5)
	if err != nil {
		t.Fatal(err)
	}
	cands := []Candidate{{1, 1}, {2, 2}, {4, 2}}
	res, err := Threads(g, core.DefaultConfig(2), cands, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != len(cands) {
		t.Fatalf("trials = %d", len(res.Trials))
	}
	// Best must be one of the candidates and match the minimum trial.
	var min Trial
	for i, tr := range res.Trials {
		if tr.Cost <= 0 {
			t.Fatalf("trial %d has non-positive cost", i)
		}
		if i == 0 || tr.Cost < min.Cost {
			min = tr
		}
	}
	if res.Best.Workers != min.Workers || res.Best.Copiers != min.Copiers {
		t.Errorf("best = %d/%d, min trial = %d/%d",
			res.Best.Workers, res.Best.Copiers, min.Workers, min.Copiers)
	}
	// The returned config must boot.
	c, err := core.NewCluster(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Load(g); err != nil {
		t.Fatal(err)
	}
}

func TestThreadsCustomProbeAndDefaults(t *testing.T) {
	g, err := graph.Uniform(200, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic probe: prefer exactly 2 workers.
	probe := func(c *core.Cluster) (time.Duration, error) {
		if c.Config().Workers == 2 {
			return time.Millisecond, nil
		}
		return time.Second, nil
	}
	res, err := Threads(g, core.DefaultConfig(2), nil, probe) // nil = DefaultCandidates
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Workers != 2 {
		t.Errorf("best workers = %d, want 2", res.Best.Workers)
	}
	if len(res.Trials) != len(DefaultCandidates()) {
		t.Errorf("trials = %d", len(res.Trials))
	}
}

func TestThreadsErrors(t *testing.T) {
	g, err := graph.Uniform(100, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Threads(g, core.DefaultConfig(2), []Candidate{{0, 1}}, nil); err == nil {
		t.Error("invalid candidate accepted")
	}
	boom := errors.New("boom")
	probe := func(c *core.Cluster) (time.Duration, error) { return 0, boom }
	if _, err := Threads(g, core.DefaultConfig(2), []Candidate{{1, 1}}, probe); !errors.Is(err, boom) {
		t.Errorf("probe error not propagated: %v", err)
	}
}
