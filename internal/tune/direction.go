package tune

import (
	"fmt"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// DirectionCandidate is one (alpha, beta) threshold pair for the
// direction-optimizing traversal heuristic: alpha gates push→pull (switch
// when frontier edge work exceeds pullEdges/alpha), beta gates pull→push
// (switch when the frontier shrinks under totalNodes/beta).
type DirectionCandidate struct {
	Alpha float64
	Beta  float64
}

// DefaultDirectionCandidates spans the grid around Beamer's classic
// (14, 24) operating point.
func DefaultDirectionCandidates() []DirectionCandidate {
	return []DirectionCandidate{
		{2, 24}, {7, 24}, {14, 24}, {28, 24},
		{14, 8}, {14, 64}, {28, 8},
	}
}

// DirectionTrial records one probed threshold pair.
type DirectionTrial struct {
	Alpha float64
	Beta  float64
	Cost  time.Duration
}

// DirectionResult is the tuning outcome: base with the winning thresholds
// filled in, plus every trial for inspection.
type DirectionResult struct {
	Best   core.Config
	Trials []DirectionTrial
}

// DefaultDirectionProbe runs one full breadth-first traversal from node 0 —
// the workload whose push/pull switching the thresholds govern.
func DefaultDirectionProbe(c *core.Cluster) (time.Duration, error) {
	_, met, err := algorithms.HopDist(c, 0, c.NumNodes())
	return met.Total, err
}

// Direction probes each (alpha, beta) candidate on g — each on a fresh
// cluster built from base, so the policy's learned cost model starts cold
// every time — and returns base with the fastest thresholds filled in. probe
// nil uses DefaultDirectionProbe. Each candidate is probed twice and the
// better time kept, damping warm-up noise.
func Direction(g *graph.Graph, base core.Config, candidates []DirectionCandidate, probe Probe) (DirectionResult, error) {
	if len(candidates) == 0 {
		candidates = DefaultDirectionCandidates()
	}
	if probe == nil {
		probe = DefaultDirectionProbe
	}
	var res DirectionResult
	best := time.Duration(0)
	for _, cand := range candidates {
		if cand.Alpha <= 0 || cand.Beta <= 0 {
			return res, fmt.Errorf("tune: direction candidate %+v invalid", cand)
		}
		cfg := base
		cfg.DirectionAlpha = cand.Alpha
		cfg.DirectionBeta = cand.Beta
		c, err := core.NewCluster(cfg)
		if err != nil {
			return res, fmt.Errorf("tune: boot %+v: %w", cand, err)
		}
		if err := c.Load(g); err != nil {
			c.Shutdown()
			return res, fmt.Errorf("tune: load %+v: %w", cand, err)
		}
		cost := time.Duration(0)
		for trial := 0; trial < 2; trial++ {
			d, err := probe(c)
			if err != nil {
				c.Shutdown()
				return res, fmt.Errorf("tune: probe %+v: %w", cand, err)
			}
			if trial == 0 || d < cost {
				cost = d
			}
		}
		c.Shutdown()
		res.Trials = append(res.Trials, DirectionTrial{Alpha: cand.Alpha, Beta: cand.Beta, Cost: cost})
		if best == 0 || cost < best {
			best = cost
			res.Best = cfg
		}
	}
	return res, nil
}
