// Package tune implements the paper's thread-count auto-tuning outlook
// (§5.3.3: "Eventually, the system will be able to auto-tune the number of
// threads based on the algorithmic workload"): it boots candidate
// worker/copier configurations, probes each with a sample workload, and
// returns the fastest — the Figure 7 exploration, automated.
package tune

import (
	"fmt"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

// Candidate is one worker/copier configuration to probe.
type Candidate struct {
	Workers int
	Copiers int
}

// DefaultCandidates spans the grid the paper explored, scaled down.
func DefaultCandidates() []Candidate {
	return []Candidate{
		{1, 1}, {2, 1}, {2, 2}, {4, 2}, {4, 4}, {8, 4},
	}
}

// Probe measures one workload on a booted cluster and returns its cost.
// The default probe runs two PageRank-pull iterations; pass a custom probe
// to tune for a different algorithmic workload.
type Probe func(c *core.Cluster) (time.Duration, error)

// DefaultProbe runs two pull-mode PageRank iterations.
func DefaultProbe(c *core.Cluster) (time.Duration, error) {
	_, met, err := algorithms.PageRankPull(c, 2, 0.85)
	return met.Total, err
}

// Trial records one probed configuration.
type Trial struct {
	Workers int
	Copiers int
	Cost    time.Duration
}

// Result is the tuning outcome: the winning configuration plus every trial
// for inspection.
type Result struct {
	Best   core.Config
	Trials []Trial
}

// Threads probes each candidate on g (each gets a fresh cluster built from
// base) and returns base with the fastest Workers/Copiers filled in. probe
// nil uses DefaultProbe. Every candidate is probed twice and the better
// time kept, damping warm-up noise.
func Threads(g *graph.Graph, base core.Config, candidates []Candidate, probe Probe) (Result, error) {
	if len(candidates) == 0 {
		candidates = DefaultCandidates()
	}
	if probe == nil {
		probe = DefaultProbe
	}
	var res Result
	best := time.Duration(0)
	for _, cand := range candidates {
		if cand.Workers < 1 || cand.Copiers < 1 {
			return res, fmt.Errorf("tune: candidate %+v invalid", cand)
		}
		cfg := base
		cfg.Workers = cand.Workers
		cfg.Copiers = cand.Copiers
		cfg.ReqBuffers = 0 // re-derive for the new thread counts
		cfg.RespBuffers = 0
		c, err := core.NewCluster(cfg)
		if err != nil {
			return res, fmt.Errorf("tune: boot %+v: %w", cand, err)
		}
		if err := c.Load(g); err != nil {
			c.Shutdown()
			return res, fmt.Errorf("tune: load %+v: %w", cand, err)
		}
		cost := time.Duration(0)
		for trial := 0; trial < 2; trial++ {
			d, err := probe(c)
			if err != nil {
				c.Shutdown()
				return res, fmt.Errorf("tune: probe %+v: %w", cand, err)
			}
			if trial == 0 || d < cost {
				cost = d
			}
		}
		c.Shutdown()
		res.Trials = append(res.Trials, Trial{Workers: cand.Workers, Copiers: cand.Copiers, Cost: cost})
		if best == 0 || cost < best {
			best = cost
			res.Best = cfg
		}
	}
	return res, nil
}
