// Package query implements the paper's §6.1 post-processing idea: "simple
// SQL operators can be implemented directly on top of PGX.D for the
// convenience of post processing — e.g., find the top-100 Pagerank nodes
// that have less than 1000 neighbors."
//
// A Frame is a columnar view over per-node values (algorithm outputs,
// degrees, labels). Operators — Where, OrderBy, Limit, Select — compose
// lazily over row indices, so a filtered, sorted top-K never copies the
// full columns.
package query

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Column is a named per-node value vector. Exactly one of F64 or I64 is
// set; both have one entry per node.
type Column struct {
	Name string
	F64  []float64
	I64  []int64
}

func (c *Column) length() int {
	if c.F64 != nil {
		return len(c.F64)
	}
	return len(c.I64)
}

// value returns row i as float64 for ordering and predicates.
func (c *Column) value(i int) float64 {
	if c.F64 != nil {
		return c.F64[i]
	}
	return float64(c.I64[i])
}

// F64Col builds a float64 column.
func F64Col(name string, vals []float64) Column { return Column{Name: name, F64: vals} }

// I64Col builds an int64 column.
func I64Col(name string, vals []int64) Column { return Column{Name: name, I64: vals} }

// DegreeColumns derives in/out/total degree columns from a graph.
func DegreeColumns(g *graph.Graph) []Column {
	n := g.NumNodes()
	in := make([]int64, n)
	out := make([]int64, n)
	total := make([]int64, n)
	for u := 0; u < n; u++ {
		in[u] = g.InDegree(graph.NodeID(u))
		out[u] = g.OutDegree(graph.NodeID(u))
		total[u] = in[u] + out[u]
	}
	return []Column{
		I64Col("in_degree", in),
		I64Col("out_degree", out),
		I64Col("degree", total),
	}
}

// Frame is a queryable set of columns over the same node universe, plus a
// row selection. The zero Frame is invalid; build with NewFrame.
type Frame struct {
	cols map[string]*Column
	// rows is the current selection (node ids); nil means all nodes.
	rows []int
	n    int
	err  error
}

// NewFrame builds a frame over n nodes with the given columns. Every column
// must have exactly n entries.
func NewFrame(n int, cols ...Column) (*Frame, error) {
	f := &Frame{cols: make(map[string]*Column), n: n}
	for i := range cols {
		c := cols[i]
		if (c.F64 == nil) == (c.I64 == nil) {
			return nil, fmt.Errorf("query: column %q must have exactly one of F64/I64", c.Name)
		}
		if c.length() != n {
			return nil, fmt.Errorf("query: column %q has %d rows, want %d", c.Name, c.length(), n)
		}
		if _, dup := f.cols[c.Name]; dup {
			return nil, fmt.Errorf("query: duplicate column %q", c.Name)
		}
		f.cols[c.Name] = &c
	}
	return f, nil
}

// clone returns a shallow copy sharing columns but owning its row selection.
func (f *Frame) clone(rows []int) *Frame {
	return &Frame{cols: f.cols, rows: rows, n: f.n, err: f.err}
}

// fail marks the frame's pipeline as errored.
func (f *Frame) fail(format string, args ...any) *Frame {
	if f.err != nil {
		return f
	}
	g := f.clone(f.rows)
	g.err = fmt.Errorf(format, args...)
	return g
}

// materialRows returns the current selection as a concrete slice.
func (f *Frame) materialRows() []int {
	if f.rows != nil {
		return f.rows
	}
	rows := make([]int, f.n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// Len returns the number of selected rows.
func (f *Frame) Len() int {
	if f.rows != nil {
		return len(f.rows)
	}
	return f.n
}

// Err returns the first error of the pipeline, surfaced by terminal calls.
func (f *Frame) Err() error { return f.err }

// Predicate tests one row's value.
type Predicate func(v float64) bool

// Common predicates.
func Lt(x float64) Predicate  { return func(v float64) bool { return v < x } }
func Le(x float64) Predicate  { return func(v float64) bool { return v <= x } }
func Gt(x float64) Predicate  { return func(v float64) bool { return v > x } }
func Ge(x float64) Predicate  { return func(v float64) bool { return v >= x } }
func Eq(x float64) Predicate  { return func(v float64) bool { return v == x } }
func Neq(x float64) Predicate { return func(v float64) bool { return v != x } }

// Where keeps rows whose column value satisfies pred.
func (f *Frame) Where(column string, pred Predicate) *Frame {
	if f.err != nil {
		return f
	}
	col, ok := f.cols[column]
	if !ok {
		return f.fail("query: unknown column %q in Where", column)
	}
	in := f.materialRows()
	out := make([]int, 0, len(in))
	for _, r := range in {
		if pred(col.value(r)) {
			out = append(out, r)
		}
	}
	return f.clone(out)
}

// OrderBy sorts the selection by a column; descending when desc. The sort
// is stable so ties keep node order.
func (f *Frame) OrderBy(column string, desc bool) *Frame {
	if f.err != nil {
		return f
	}
	col, ok := f.cols[column]
	if !ok {
		return f.fail("query: unknown column %q in OrderBy", column)
	}
	rows := append([]int(nil), f.materialRows()...)
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := col.value(rows[i]), col.value(rows[j])
		if desc {
			return a > b
		}
		return a < b
	})
	return f.clone(rows)
}

// Limit keeps the first k rows of the selection.
func (f *Frame) Limit(k int) *Frame {
	if f.err != nil {
		return f
	}
	rows := f.materialRows()
	if k < 0 {
		k = 0
	}
	if k > len(rows) {
		k = len(rows)
	}
	return f.clone(rows[:k])
}

// Row is one result row: the node id plus the selected column values in
// Select order.
type Row struct {
	Node   graph.NodeID
	Values []float64
}

// Select materializes the pipeline, returning the chosen columns per
// selected row.
func (f *Frame) Select(columns ...string) ([]Row, error) {
	if f.err != nil {
		return nil, f.err
	}
	cols := make([]*Column, len(columns))
	for i, name := range columns {
		c, ok := f.cols[name]
		if !ok {
			return nil, fmt.Errorf("query: unknown column %q in Select", name)
		}
		cols[i] = c
	}
	rows := f.materialRows()
	out := make([]Row, len(rows))
	for i, r := range rows {
		vals := make([]float64, len(cols))
		for j, c := range cols {
			vals[j] = c.value(r)
		}
		out[i] = Row{Node: graph.NodeID(r), Values: vals}
	}
	return out, nil
}

// Nodes materializes just the selected node ids.
func (f *Frame) Nodes() ([]graph.NodeID, error) {
	if f.err != nil {
		return nil, f.err
	}
	rows := f.materialRows()
	out := make([]graph.NodeID, len(rows))
	for i, r := range rows {
		out[i] = graph.NodeID(r)
	}
	return out, nil
}

// Aggregate computes an aggregate over one column of the selection.
type Aggregate struct {
	Count int
	Sum   float64
	Min   float64
	Max   float64
	Mean  float64
}

// Agg folds the selected rows of a column.
func (f *Frame) Agg(column string) (Aggregate, error) {
	if f.err != nil {
		return Aggregate{}, f.err
	}
	col, ok := f.cols[column]
	if !ok {
		return Aggregate{}, fmt.Errorf("query: unknown column %q in Agg", column)
	}
	rows := f.materialRows()
	agg := Aggregate{Count: len(rows)}
	for i, r := range rows {
		v := col.value(r)
		agg.Sum += v
		if i == 0 || v < agg.Min {
			agg.Min = v
		}
		if i == 0 || v > agg.Max {
			agg.Max = v
		}
	}
	if agg.Count > 0 {
		agg.Mean = agg.Sum / float64(agg.Count)
	}
	return agg, nil
}
