package query

import (
	"testing"

	"repro/internal/graph"
)

func frame(t *testing.T) *Frame {
	t.Helper()
	// 6 nodes with rank and degree columns.
	f, err := NewFrame(6,
		F64Col("rank", []float64{0.5, 0.1, 0.9, 0.3, 0.9, 0.2}),
		I64Col("degree", []int64{10, 200, 30, 400, 5, 60}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPaperExampleQuery(t *testing.T) {
	// The paper's example: top-K rank among nodes with fewer than N
	// neighbors.
	rows, err := frame(t).
		Where("degree", Lt(100)).
		OrderBy("rank", true).
		Limit(2).
		Select("rank", "degree")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Nodes 2 and 4 both rank 0.9 with degree < 100; stable sort keeps node
	// order.
	if rows[0].Node != 2 || rows[1].Node != 4 {
		t.Errorf("rows = %+v", rows)
	}
	if rows[0].Values[0] != 0.9 || rows[0].Values[1] != 30 {
		t.Errorf("values = %v", rows[0].Values)
	}
}

func TestPredicates(t *testing.T) {
	cases := []struct {
		pred Predicate
		v    float64
		want bool
	}{
		{Lt(5), 4, true}, {Lt(5), 5, false},
		{Le(5), 5, true}, {Le(5), 6, false},
		{Gt(5), 6, true}, {Gt(5), 5, false},
		{Ge(5), 5, true}, {Ge(5), 4, false},
		{Eq(5), 5, true}, {Eq(5), 4, false},
		{Neq(5), 4, true}, {Neq(5), 5, false},
	}
	for i, c := range cases {
		if got := c.pred(c.v); got != c.want {
			t.Errorf("case %d: got %v", i, got)
		}
	}
}

func TestWhereChaining(t *testing.T) {
	nodes, err := frame(t).
		Where("rank", Ge(0.2)).
		Where("degree", Le(60)).
		Nodes()
	if err != nil {
		t.Fatal(err)
	}
	// rank>=0.2: nodes 0,2,3,4,5; degree<=60 among them: 0,2,4,5.
	want := []graph.NodeID{0, 2, 4, 5}
	if len(nodes) != len(want) {
		t.Fatalf("nodes = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("nodes = %v, want %v", nodes, want)
		}
	}
}

func TestOrderAscendingAndLimitBounds(t *testing.T) {
	f := frame(t).OrderBy("degree", false)
	nodes, err := f.Limit(100).Nodes() // beyond length clamps
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 6 || nodes[0] != 4 || nodes[5] != 3 {
		t.Errorf("order = %v", nodes)
	}
	empty, err := f.Limit(-1).Nodes()
	if err != nil || len(empty) != 0 {
		t.Errorf("negative limit: %v %v", empty, err)
	}
}

func TestAgg(t *testing.T) {
	agg, err := frame(t).Where("rank", Gt(0.25)).Agg("degree")
	if err != nil {
		t.Fatal(err)
	}
	// rank>0.25: nodes 0,2,3,4 with degrees 10,30,400,5.
	if agg.Count != 4 || agg.Sum != 445 || agg.Min != 5 || agg.Max != 400 {
		t.Errorf("agg = %+v", agg)
	}
	if agg.Mean != 445.0/4 {
		t.Errorf("mean = %g", agg.Mean)
	}
	empty, err := frame(t).Where("rank", Gt(99)).Agg("degree")
	if err != nil || empty.Count != 0 || empty.Mean != 0 {
		t.Errorf("empty agg = %+v (%v)", empty, err)
	}
}

func TestErrorPropagation(t *testing.T) {
	f := frame(t).Where("nope", Lt(1)).OrderBy("rank", true).Limit(3)
	if f.Err() == nil {
		t.Fatal("missing error")
	}
	if _, err := f.Select("rank"); err == nil {
		t.Error("Select swallowed pipeline error")
	}
	if _, err := f.Nodes(); err == nil {
		t.Error("Nodes swallowed pipeline error")
	}
	if _, err := f.Agg("rank"); err == nil {
		t.Error("Agg swallowed pipeline error")
	}
	if _, err := frame(t).Select("nope"); err == nil {
		t.Error("unknown Select column accepted")
	}
	if _, err := frame(t).OrderBy("nope", true).Nodes(); err == nil {
		t.Error("unknown OrderBy column accepted")
	}
	if _, err := frame(t).Agg("nope"); err == nil {
		t.Error("unknown Agg column accepted")
	}
}

func TestNewFrameValidation(t *testing.T) {
	if _, err := NewFrame(3, Column{Name: "both", F64: []float64{1, 2, 3}, I64: []int64{1, 2, 3}}); err == nil {
		t.Error("column with both types accepted")
	}
	if _, err := NewFrame(3, Column{Name: "neither"}); err == nil {
		t.Error("column with no values accepted")
	}
	if _, err := NewFrame(3, F64Col("short", []float64{1})); err == nil {
		t.Error("wrong-length column accepted")
	}
	if _, err := NewFrame(2, F64Col("a", []float64{1, 2}), F64Col("a", []float64{3, 4})); err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestDegreeColumns(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 0}}, false)
	if err != nil {
		t.Fatal(err)
	}
	cols := DegreeColumns(g)
	f, err := NewFrame(3, cols...)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := f.Select("in_degree", "out_degree", "degree")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Values[0] != 1 || rows[0].Values[1] != 2 || rows[0].Values[2] != 3 {
		t.Errorf("node 0 degrees = %v", rows[0].Values)
	}
	if f.Len() != 3 {
		t.Errorf("Len = %d", f.Len())
	}
}
