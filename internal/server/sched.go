package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Admission errors surfaced to handleRun. errRunCanceled tags queued runs
// killed by op=cancel so the server counts them separately from failures.
var (
	errShutdown    = errors.New("server shutting down")
	errRunCanceled = errors.New("run canceled")
)

// engine is one pooled cluster of an instance: analyses lease an engine for
// their whole run, so one engine executes one job stream at a time while its
// siblings serve other runs on the same shared graph.
type engine struct {
	idx     int
	cluster *core.Cluster
	reg     *obs.Registry // nil when observability is disabled
}

// enginePool is an instance's set of engines with a free list. It is not a
// channel so the scheduler can test availability without consuming, and so
// exclusive operations (mutate, drop) can collect every engine.
type enginePool struct {
	mu   sync.Mutex
	all  []*engine
	idle []*engine
}

func newEnginePool(all []*engine) *enginePool {
	idle := make([]*engine, len(all))
	copy(idle, all)
	return &enginePool{all: all, idle: idle}
}

// tryAcquire pops an idle engine, or nil when every engine is leased.
func (p *enginePool) tryAcquire() *engine {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.idle)
	if n == 0 {
		return nil
	}
	e := p.idle[n-1]
	p.idle = p.idle[:n-1]
	return e
}

// release returns one engine to the free list.
func (p *enginePool) release(e *engine) {
	p.mu.Lock()
	p.idle = append(p.idle, e)
	p.mu.Unlock()
}

// idleCount reports how many engines are free right now.
func (p *enginePool) idleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// acquireAll collects every engine, waiting for leased ones to come home —
// the exclusive lock mutate and drop take. Callers must serialize through
// the instance admin lock (two concurrent acquireAll calls would deadlock
// splitting the pool). stop (the server's done channel) aborts the wait.
func (p *enginePool) acquireAll(stop <-chan struct{}) ([]*engine, error) {
	var held []*engine
	for {
		p.mu.Lock()
		held = append(held, p.idle...)
		p.idle = p.idle[:0]
		got := len(held) == len(p.all)
		p.mu.Unlock()
		if got {
			return held, nil
		}
		select {
		case <-stop:
			p.releaseAll(held)
			return nil, errShutdown
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// releaseAll returns a batch of engines to the free list.
func (p *enginePool) releaseAll(engines []*engine) {
	if len(engines) == 0 {
		return
	}
	p.mu.Lock()
	p.idle = append(p.idle, engines...)
	p.mu.Unlock()
}

// admitResult is what a queued ticket eventually receives: an engine lease,
// or a terminal admission error (dropped graph, cancel, shutdown).
type admitResult struct {
	eng *engine
	err error
}

// ticket is one run request waiting for (or holding) admission.
type ticket struct {
	seq      uint64
	tenant   string
	tag      string
	priority int
	enqueued time.Time
	inst     *instance
	// memMB is the run's declared (Request.MaxResidentMB) or store-sizing
	// estimated resident need, charged against the scheduler's memory budget
	// for the duration of the lease. Zero when no budget is configured.
	memMB int64
	// deferred marks that the memory gate has already skipped this ticket
	// once, so the budget-deferral stat counts runs, not dispatch sweeps.
	deferred bool
	// result receives exactly one admitResult; buffered so the dispatcher
	// never blocks on a waiter.
	result chan admitResult
}

// scheduler is the admission queue: it charges a global concurrency slot
// only when a run can actually execute — the target instance has an idle
// engine and the tenant is under quota — so a request blocked behind a busy
// graph never starves requests for other graphs (the runSem bug this
// replaces acquired the global slot first and then slept on the instance).
type scheduler struct {
	maxConcurrent int
	defaultQuota  int            // per-tenant running cap; <=0 means no cap
	quotas        map[string]int // per-tenant overrides of defaultQuota
	aging         time.Duration  // queued priority +1 per aging waited; <=0 disables
	memBudgetMB   int64          // cap on Σ memMB of running analyses; <=0 disables

	mu        sync.Mutex
	seq       uint64
	queue     []*ticket
	running   map[*ticket]*engine
	perTenant map[string]int // running analyses per tenant
	// memInUseMB is the declared/estimated resident total of running
	// analyses; budgetDeferrals counts tickets the memory gate held back at
	// least once.
	memInUseMB      int64
	budgetDeferrals int64
}

func newScheduler(maxConcurrent, defaultQuota int, quotas map[string]int, aging time.Duration, memBudgetMB int64) *scheduler {
	return &scheduler{
		maxConcurrent: maxConcurrent,
		defaultQuota:  defaultQuota,
		quotas:        quotas,
		aging:         aging,
		memBudgetMB:   memBudgetMB,
		running:       make(map[*ticket]*engine),
		perTenant:     make(map[string]int),
	}
}

// quota returns tenant's concurrent-run cap (<=0: unlimited).
func (s *scheduler) quota(tenant string) int {
	if q, ok := s.quotas[tenant]; ok {
		return q
	}
	return s.defaultQuota
}

// enqueue registers t and tries to admit. Returns t's admission sequence
// number (the server-side job id).
func (s *scheduler) enqueue(t *ticket) uint64 {
	s.mu.Lock()
	s.seq++
	t.seq = s.seq
	s.queue = append(s.queue, t)
	s.mu.Unlock()
	s.dispatch()
	return t.seq
}

// remove takes a still-queued ticket out (deadline expiry, shutdown). False
// means the ticket was already admitted or resolved — the caller must then
// consume t.result and release the lease.
func (s *scheduler) remove(t *ticket) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, q := range s.queue {
		if q == t {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return true
		}
	}
	return false
}

// effPriority is t's queue priority with aging applied: one level per
// s.aging waited, so old low-priority work eventually outbids fresh
// high-priority work and nothing starves.
func (s *scheduler) effPriority(t *ticket, now time.Time) int64 {
	p := int64(t.priority)
	if s.aging > 0 {
		p += int64(now.Sub(t.enqueued) / s.aging)
	}
	return p
}

// dispatch admits queued tickets while capacity lasts. Called whenever
// capacity may have appeared: enqueue, release, engines returned by mutate,
// an instance dropped. Admission order is aged priority, FIFO within a
// level; a ticket whose instance has no idle engine or whose tenant is at
// quota is skipped, not waited on — no head-of-line blocking.
func (s *scheduler) dispatch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	// Fail tickets whose instance was dropped while they queued.
	kept := s.queue[:0]
	for _, t := range s.queue {
		if t.inst.closed.Load() {
			t.result <- admitResult{err: fmt.Errorf("graph %q dropped while queued", t.inst.name)}
			continue
		}
		kept = append(kept, t)
	}
	s.queue = kept
	if len(s.queue) > 1 {
		sort.SliceStable(s.queue, func(i, j int) bool {
			pi, pj := s.effPriority(s.queue[i], now), s.effPriority(s.queue[j], now)
			if pi != pj {
				return pi > pj
			}
			return s.queue[i].seq < s.queue[j].seq
		})
	}
	for len(s.running) < s.maxConcurrent {
		admitted := false
		for i, t := range s.queue {
			if q := s.quota(t.tenant); q > 0 && s.perTenant[t.tenant] >= q {
				continue
			}
			// Memory gate: admitting t must keep the running set's declared
			// resident total under the budget. An idle server always admits —
			// a run bigger than the whole budget would otherwise queue
			// forever; alone it can still only be killed by the OS, not
			// starved by us. Deferral is counted once per ticket.
			if s.memBudgetMB > 0 && t.memMB > 0 && len(s.running) > 0 &&
				s.memInUseMB+t.memMB > s.memBudgetMB {
				if !t.deferred {
					t.deferred = true
					s.budgetDeferrals++
				}
				continue
			}
			eng := t.inst.pool.tryAcquire()
			if eng == nil {
				continue // instance busy; later tickets may target idle graphs
			}
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.running[t] = eng
			s.perTenant[t.tenant]++
			s.memInUseMB += t.memMB
			t.result <- admitResult{eng: eng}
			admitted = true
			break
		}
		if !admitted {
			return
		}
	}
}

// release ends t's lease: the engine returns to its instance pool and the
// freed capacity is re-dispatched.
func (s *scheduler) release(t *ticket) {
	s.mu.Lock()
	eng := s.running[t]
	if eng != nil {
		s.memInUseMB -= t.memMB
	}
	delete(s.running, t)
	if s.perTenant[t.tenant]--; s.perTenant[t.tenant] <= 0 {
		delete(s.perTenant, t.tenant)
	}
	s.mu.Unlock()
	if eng != nil {
		t.inst.pool.release(eng)
	}
	s.dispatch()
}

// cancelByTag kills runs labeled tag: queued ones resolve with
// errRunCanceled, running ones have their engine canceled through the abort
// latch (the run's own handler observes the abort and releases). tenant,
// when non-empty, restricts the match. Returns how many runs matched.
func (s *scheduler) cancelByTag(tag, tenant string, cause error) int {
	match := func(t *ticket) bool {
		return t.tag == tag && tag != "" && (tenant == "" || t.tenant == tenant)
	}
	n := 0
	s.mu.Lock()
	kept := s.queue[:0]
	for _, t := range s.queue {
		if match(t) {
			t.result <- admitResult{err: fmt.Errorf("%w: %w", errRunCanceled, cause)}
			n++
			continue
		}
		kept = append(kept, t)
	}
	s.queue = kept
	var cancel []*engine
	for t, eng := range s.running {
		if match(t) {
			cancel = append(cancel, eng)
			n++
		}
	}
	s.mu.Unlock()
	for _, eng := range cancel {
		eng.cluster.Cancel(cause)
	}
	return n
}

// queueLen reports how many requests await admission.
func (s *scheduler) queueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// memStats snapshots the memory gate's accounting for stats.
func (s *scheduler) memStats() (inUseMB, deferrals int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memInUseMB, s.budgetDeferrals
}

// tenantLoad snapshots per-tenant running and queued counts for stats.
func (s *scheduler) tenantLoad() (running, queued map[string]int) {
	running = make(map[string]int)
	queued = make(map[string]int)
	s.mu.Lock()
	defer s.mu.Unlock()
	for tenant, n := range s.perTenant {
		running[tenant] = n
	}
	for _, t := range s.queue {
		queued[t.tenant]++
	}
	return running, queued
}
