// Package server implements the paper's §6.2 outlook as a working system:
// "a long-running server system which allows multiple concurrent clients.
// That is, each client can load up multiple graph instances and execute
// different analysis algorithms on them in an interactive manner."
//
// The server keeps a registry of named graph instances, each backed by a
// small pool of engine clusters over one shared immutable graph, so
// read-only analyses on the same graph run concurrently (analyses never
// mutate the graph, only their own job-scoped properties). Requests arrive
// as JSON lines over TCP and pass through an admission scheduler: a global
// concurrency cap, per-tenant quotas, priorities with aging, and
// per-request deadlines/cancellation that abort the engine job through the
// core cancellation latch — the resource-fairness questions the paper
// raises, answered with an explicit multi-tenant job scheduler.
package server

import (
	"encoding/json"
	"fmt"
)

// Request is one client command. Op selects the action; the remaining
// fields are op-specific.
type Request struct {
	// Op is one of: load, generate, run, cancel, list, mutate, drop, stats.
	Op string `json:"op"`

	// Graph names the target instance (load, generate, run, drop).
	Graph string `json:"graph,omitempty"`

	// Tenant identifies the client for admission accounting and per-tenant
	// concurrency quotas (op=run, optionally op=cancel). Empty maps to
	// "default".
	Tenant string `json:"tenant,omitempty"`

	// Priority biases admission order (op=run): higher runs sooner, default
	// 0, clamped to [-8, 8]. Queued requests age one level per
	// Config.PriorityAging waited, so low-priority work cannot starve.
	Priority int `json:"priority,omitempty"`

	// TimeoutMillis, when positive, is the request's end-to-end deadline
	// (op=run): queue wait plus execution. A request still queued when it
	// expires is rejected; a running one has its engine job canceled through
	// the abort latch and returns a deadline error.
	TimeoutMillis int64 `json:"timeout_millis,omitempty"`

	// MaxResidentMB declares the run's peak resident-memory need in MiB
	// (op=run). Zero lets the server estimate it from the target graph's
	// store sizing. The admission memory gate keeps the sum over running
	// analyses within Config.RunMemoryBudgetMB: an over-budget run queues
	// (counted in stats as a budget deferral) until enough memory frees.
	MaxResidentMB int64 `json:"max_resident_mb,omitempty"`

	// Tag is a client-chosen label for a run (op=run) so another connection
	// can cancel it (op=cancel): cancel removes queued runs with the tag and
	// aborts running ones via the engine's cancellation latch. With Tenant
	// set on the cancel, only that tenant's runs match.
	Tag string `json:"tag,omitempty"`

	// Path is a graph file to load (op=load); .bin selects binary format.
	Path string `json:"path,omitempty"`

	// Generator parameters (op=generate).
	Kind       string  `json:"kind,omitempty"` // rmat, uniform, grid
	Scale      int     `json:"scale,omitempty"`
	EdgeFactor int     `json:"edge_factor,omitempty"`
	Nodes      int     `json:"nodes,omitempty"`
	Edges      int     `json:"edges,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	WeightLo   float64 `json:"weight_lo,omitempty"`
	WeightHi   float64 `json:"weight_hi,omitempty"`

	// Engine parameters (load/generate).
	Machines int `json:"machines,omitempty"`

	// Mutation batches (op=mutate): edges to add and remove. The server
	// applies them to the instance's dynamic representation, snapshots, and
	// reloads the engine — the paper's snapshot approach to dynamic graphs.
	Add    []EdgeSpec `json:"add,omitempty"`
	Remove []EdgeSpec `json:"remove,omitempty"`

	// Analysis parameters (op=run).
	Algo       string  `json:"algo,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
	Damping    float64 `json:"damping,omitempty"`
	Threshold  float64 `json:"threshold,omitempty"`
	Source     uint32  `json:"source,omitempty"`
	TopK       int     `json:"top_k,omitempty"`
}

// Response is the server's reply to one request.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	// Graphs lists loaded instances (op=list, op=stats).
	Graphs []GraphInfo `json:"graphs,omitempty"`

	// Result carries an analysis outcome (op=run).
	Result *RunResult `json:"result,omitempty"`

	// Stats carries server-level counters (op=stats).
	Stats *ServerStats `json:"stats,omitempty"`
}

// EdgeSpec is one edge in a mutation batch.
type EdgeSpec struct {
	Src    uint32  `json:"src"`
	Dst    uint32  `json:"dst"`
	Weight float64 `json:"weight,omitempty"`
}

// GraphInfo describes one loaded graph instance.
type GraphInfo struct {
	Name     string `json:"name"`
	Nodes    int    `json:"nodes"`
	Edges    int64  `json:"edges"`
	Weighted bool   `json:"weighted"`
	Machines int    `json:"machines"`
	Ghosts   int    `json:"ghosts"`
}

// RunResult summarizes one analysis.
type RunResult struct {
	Algo        string      `json:"algo"`
	Iterations  int         `json:"iterations"`
	Millis      float64     `json:"millis"`
	Extra       string      `json:"extra,omitempty"`
	TopVertices []TopVertex `json:"top,omitempty"`

	// JobID is the server-assigned admission sequence number of this run.
	JobID uint64 `json:"job_id,omitempty"`
	// QueueMillis is how long the run waited for admission before an engine
	// was granted (Millis measures execution only).
	QueueMillis float64 `json:"queue_millis,omitempty"`
}

// TopVertex is one entry of an analysis' top-K ranking.
type TopVertex struct {
	Node  uint32  `json:"node"`
	Value float64 `json:"value"`
}

// ServerStats reports server-level accounting. FailedRuns counts analyses
// that returned an error (including engine job aborts); TransportErrors
// sums failed socket writes and rejected inbound frames across all loaded
// instances' fabrics — nonzero values mean the engine has been absorbing
// wire faults rather than crashing. The run-duration percentiles cover the
// most recent analyses (a sliding window); JobsObserved counts engine-level
// parallel regions across instances, as seen by their observability
// registries.
type ServerStats struct {
	LoadedGraphs    int   `json:"loaded_graphs"`
	ResidentEdges   int64 `json:"resident_edges"`
	MaxEdges        int64 `json:"max_edges"`
	RunsServed      int64 `json:"runs_served"`
	FailedRuns      int64 `json:"failed_runs"`
	ActiveAnalyses  int   `json:"active_analyses"`
	TransportErrors int64 `json:"transport_errors"`

	// Wire compression accounting across all loaded instances' fabrics:
	// fixed-width payload bytes eligible batches would have shipped, what
	// they actually occupied, the saving, and the wire/raw ratio (1.0 when
	// compression never engaged).
	WireRawBytes     int64   `json:"wire_raw_bytes"`
	WireBytes        int64   `json:"wire_bytes"`
	WireSavedBytes   int64   `json:"wire_saved_bytes"`
	CompressionRatio float64 `json:"compression_ratio"`

	// Work-stealing accounting across all loaded instances' engines: steal
	// requests issued by out-of-work thieves, grants that carried at least
	// one chunk, and the node/edge volume that moved. StaleWriteFrames
	// counts write frames dropped by the epoch check — frames from an
	// aborted job that outlived post-abort recovery. All zero unless
	// EnableWorkStealing is on and some cut was imbalanced enough to trip
	// the structural steal gate.
	StealRequests    int64 `json:"steal_requests"`
	StealGrants      int64 `json:"steal_grants"`
	StolenNodes      int64 `json:"stolen_nodes"`
	StolenEdges      int64 `json:"stolen_edges"`
	StaleWriteFrames int64 `json:"stale_write_frames"`

	// Out-of-core accounting across all instances' engines: decode-cache
	// hit/miss chunk claims on compressed (CSR v3) stores, raw ref bytes those
	// misses decoded, arena bytes evicted under the cache budget, and file
	// bytes advised into/out of the residency window. All zero unless some
	// instance runs from a store file.
	DecodeHits            int64 `json:"decode_hits"`
	DecodeMisses          int64 `json:"decode_misses"`
	DecodedBytes          int64 `json:"decoded_bytes"`
	DecodeEvictedBytes    int64 `json:"decode_evicted_bytes"`
	ResidencyTouchedBytes int64 `json:"residency_touched_bytes"`
	ResidencyEvictedBytes int64 `json:"residency_evicted_bytes"`

	UptimeSeconds float64 `json:"uptime_seconds"`
	RunP50Millis  float64 `json:"run_p50_millis,omitempty"`
	RunP90Millis  float64 `json:"run_p90_millis,omitempty"`
	RunP99Millis  float64 `json:"run_p99_millis,omitempty"`
	JobsObserved  int64   `json:"jobs_observed"`
	AbortsSeen    int64   `json:"aborts_seen"`

	// Scheduler accounting: requests waiting for admission right now, the
	// per-instance engine pool size, runs rejected or aborted by their
	// deadline, runs canceled explicitly (op=cancel or shutdown), and the
	// admission-queue wait percentiles from the server's obs histogram
	// (power-of-two bucket upper bounds).
	QueuedAnalyses int `json:"queued_analyses"`
	EnginePoolSize int `json:"engine_pool_size"`
	// BudgetDeferrals counts runs the admission memory gate held back at
	// least once because admitting them would have pushed the running set
	// past Config.RunMemoryBudgetMB; MemInUseMB is the declared/estimated
	// resident total of the currently running analyses. Both stay zero with
	// no memory budget configured.
	BudgetDeferrals      int64   `json:"budget_deferrals"`
	MemInUseMB           int64   `json:"mem_in_use_mb"`
	DeadlineExceededRuns int64   `json:"deadline_exceeded_runs"`
	CanceledRuns         int64   `json:"canceled_runs"`
	QueueP50Millis       float64 `json:"queue_p50_millis,omitempty"`
	QueueP99Millis       float64 `json:"queue_p99_millis,omitempty"`

	// Tenants breaks admission accounting down per tenant ID.
	Tenants map[string]*TenantStats `json:"tenants,omitempty"`

	// LastAbort summarizes the most recent flight-recorder dump across all
	// loaded instances, or nil when no job has aborted.
	LastAbort *AbortSummary `json:"last_abort,omitempty"`
}

// TenantStats is one tenant's slice of the scheduler accounting.
type TenantStats struct {
	// Served counts completed analyses; Failed counts error responses
	// (including canceled and deadline-exceeded runs).
	Served int64 `json:"served"`
	Failed int64 `json:"failed"`
	// Running and Queued are the tenant's current admission state.
	Running int `json:"running"`
	Queued  int `json:"queued"`
}

// AbortSummary is the stats-protocol view of a flight-recorder dump.
type AbortSummary struct {
	Graph string `json:"graph"`
	Job   uint64 `json:"job"`
	Name  string `json:"name"`
	Err   string `json:"err"`
	// AgeSeconds is how long ago the abort happened.
	AgeSeconds float64 `json:"age_seconds"`
	// Spans is how many trace spans the flight recorder retained.
	Spans int `json:"spans"`
}

// encode writes v as one JSON line.
func encode(enc *json.Encoder, v any) error {
	return enc.Encode(v)
}

// errResp builds an error response.
func errResp(format string, args ...any) Response {
	return Response{OK: false, Error: fmt.Sprintf(format, args...)}
}
