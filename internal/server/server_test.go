package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/graph"
)

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func dial(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestGenerateRunDrop(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	c := dial(t, s)

	info, err := c.Generate(Request{Graph: "twt", Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 7, Machines: 2})
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != 1024 || info.Edges != 8192 || info.Machines != 2 {
		t.Fatalf("info = %+v", info)
	}

	res, err := c.Run(Request{Graph: "twt", Algo: "pagerank", Iterations: 5, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 5 || len(res.TopVertices) != 3 || res.Millis <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// PageRank top vertices are sorted descending.
	if res.TopVertices[0].Value < res.TopVertices[1].Value {
		t.Error("top vertices not sorted")
	}

	res, err = c.Run(Request{Graph: "twt", Algo: "wcc"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Extra == "" {
		t.Error("wcc result missing component count")
	}

	list, err := c.List()
	if err != nil || len(list) != 1 || list[0].Name != "twt" {
		t.Fatalf("list = %v (%v)", list, err)
	}
	if err := c.Drop("twt"); err != nil {
		t.Fatal(err)
	}
	list, err = c.List()
	if err != nil || len(list) != 0 {
		t.Fatalf("list after drop = %v (%v)", list, err)
	}
}

func TestLoadFromFile(t *testing.T) {
	g, err := graph.RMAT(9, 6, graph.TwitterLike(), 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	binPath := filepath.Join(dir, "g.bin")
	f, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s := startServer(t, DefaultServerConfig())
	c := dial(t, s)
	info, err := c.Load("disk", binPath, 2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != g.NumNodes() || info.Edges != g.NumEdges() {
		t.Fatalf("info = %+v", info)
	}
	if _, err := c.Load("missing", filepath.Join(dir, "nope.bin"), 2); err == nil {
		t.Error("loading missing file succeeded")
	}
}

func TestWeightedGenerationAndSSSP(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	c := dial(t, s)
	info, err := c.Generate(Request{Graph: "w", Kind: "uniform", Nodes: 500, Edges: 4000, Seed: 2, WeightLo: 1, WeightHi: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Weighted {
		t.Fatal("weights not attached")
	}
	res, err := c.Run(Request{Graph: "w", Algo: "sssp", Source: 0, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	// SSSP top vertices sort ascending; the source itself is distance 0.
	if res.TopVertices[0].Node != 0 || res.TopVertices[0].Value != 0 {
		t.Errorf("nearest vertex = %+v", res.TopVertices[0])
	}
	// SSSP on an unweighted graph must fail cleanly.
	if _, err := c.Generate(Request{Graph: "uw", Kind: "uniform", Nodes: 100, Edges: 500}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(Request{Graph: "uw", Algo: "sssp"}); err == nil {
		t.Error("sssp on unweighted graph succeeded")
	}
}

func TestAdmissionControl(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.MaxResidentEdges = 10000
	s := startServer(t, cfg)
	c := dial(t, s)
	if _, err := c.Generate(Request{Graph: "a", Kind: "uniform", Nodes: 500, Edges: 8000}); err != nil {
		t.Fatal(err)
	}
	// Second graph would exceed the budget.
	if _, err := c.Generate(Request{Graph: "b", Kind: "uniform", Nodes: 500, Edges: 8000}); err == nil {
		t.Fatal("budget exceeded but load admitted")
	}
	// Dropping frees budget.
	if err := c.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Generate(Request{Graph: "b", Kind: "uniform", Nodes: 500, Edges: 8000}); err != nil {
		t.Fatalf("load after drop rejected: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.LoadedGraphs != 1 || st.ResidentEdges != 8000 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	c := dial(t, s)
	if _, err := c.Generate(Request{Graph: "x", Kind: "uniform", Nodes: 100, Edges: 400}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Generate(Request{Graph: "x", Kind: "uniform", Nodes: 100, Edges: 400}); err == nil {
		t.Error("duplicate name admitted")
	}
}

func TestErrorPaths(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	c := dial(t, s)
	cases := []Request{
		{Op: "nonsense"},
		{Op: "run", Graph: "missing", Algo: "pagerank"},
		{Op: "drop", Graph: "missing"},
		{Op: "load"},
		{Op: "generate"},
		{Op: "generate", Graph: "g", Kind: "alien"},
	}
	for _, req := range cases {
		resp, err := c.Do(req)
		if err != nil {
			t.Fatalf("transport error for %+v: %v", req, err)
		}
		if resp.OK {
			t.Errorf("request %+v unexpectedly succeeded", req)
		}
	}
	// Unknown algorithm.
	if _, err := c.Generate(Request{Graph: "g", Kind: "uniform", Nodes: 100, Edges: 400}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(Request{Graph: "g", Algo: "quantum"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// TestConcurrentClients is the multi-tenancy scenario from the paper's
// outlook: several clients, several graphs, interleaved analyses.
func TestConcurrentClients(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.MaxConcurrentAnalyses = 2
	s := startServer(t, cfg)

	setup := dial(t, s)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("g%d", i)
		if _, err := setup.Generate(Request{Graph: name, Kind: "rmat", Scale: 9, EdgeFactor: 6, Seed: int64(i), Machines: 2}); err != nil {
			t.Fatal(err)
		}
	}

	const clients = 4
	const runsPerClient = 5
	var wg sync.WaitGroup
	errs := make(chan error, clients*runsPerClient)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			algos := []string{"pagerank", "wcc", "hopdist", "pagerank-approx", "eigenvector"}
			for r := 0; r < runsPerClient; r++ {
				graphName := fmt.Sprintf("g%d", (cl+r)%3)
				if _, err := c.Run(Request{Graph: graphName, Algo: algos[r%len(algos)], Iterations: 3}); err != nil {
					errs <- fmt.Errorf("client %d run %d: %w", cl, r, err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st, err := setup.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.RunsServed != clients*runsPerClient {
		t.Errorf("runs served = %d, want %d", st.RunsServed, clients*runsPerClient)
	}
	if st.ActiveAnalyses != 0 {
		t.Errorf("active analyses = %d after quiesce", st.ActiveAnalyses)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	c := dial(t, s)
	if _, err := c.Generate(Request{Graph: "g", Kind: "uniform", Nodes: 50, Edges: 100}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	// Requests after close fail at the transport level.
	if _, err := c.Do(Request{Op: "list"}); err == nil {
		t.Error("request after close succeeded")
	}
}

func TestExtensionAlgorithmsOverProtocol(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	c := dial(t, s)
	if _, err := c.Generate(Request{Graph: "g", Kind: "rmat", Scale: 9, EdgeFactor: 8, Seed: 1, Machines: 2}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(Request{Graph: "g", Algo: "triangles"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Extra == "" {
		t.Error("triangles result missing count")
	}
	res, err = c.Run(Request{Graph: "g", Algo: "ppr", Source: 0, Iterations: 5, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopVertices) == 0 {
		t.Error("ppr returned no top vertices")
	}
}

func TestMutateAndSnapshotAnalytics(t *testing.T) {
	s := startServer(t, DefaultServerConfig())
	c := dial(t, s)
	if _, err := c.Generate(Request{Graph: "dyn", Kind: "uniform", Nodes: 200, Edges: 1000, Seed: 3, Machines: 2}); err != nil {
		t.Fatal(err)
	}
	before, err := c.Run(Request{Graph: "dyn", Algo: "wcc"})
	if err != nil {
		t.Fatal(err)
	}

	// Add a clique among previously arbitrary nodes and rerun.
	var add []EdgeSpec
	for u := uint32(0); u < 5; u++ {
		for v := uint32(0); v < 5; v++ {
			if u != v {
				add = append(add, EdgeSpec{Src: u, Dst: v})
			}
		}
	}
	info, err := c.Mutate("dyn", add, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Edges != 1000+20 {
		t.Fatalf("edges after mutate = %d", info.Edges)
	}
	after, err := c.Run(Request{Graph: "dyn", Algo: "wcc"})
	if err != nil {
		t.Fatal(err)
	}
	if before.Extra == "" || after.Extra == "" {
		t.Fatal("missing component counts")
	}

	// Remove edges; accounting must follow.
	info, err = c.Mutate("dyn", nil, []EdgeSpec{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Edges != 1018 {
		t.Fatalf("edges after removal = %d", info.Edges)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ResidentEdges != 1018 {
		t.Errorf("resident accounting = %d", st.ResidentEdges)
	}
	// Mutating a missing graph fails.
	if _, err := c.Mutate("nope", add, nil); err == nil {
		t.Error("mutate on missing graph accepted")
	}
	// Out-of-range edge fails without corrupting state.
	if _, err := c.Mutate("dyn", []EdgeSpec{{Src: 9999, Dst: 0}}, nil); err == nil {
		t.Error("out-of-range mutation accepted")
	}
	list, err := c.List()
	if err != nil || list[0].Edges != 1018 {
		t.Errorf("state corrupted after failed mutate: %v (%v)", list, err)
	}
}

func TestStatsObservability(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.DebugAddr = "127.0.0.1:0"
	s := startServer(t, cfg)
	if s.DebugAddr() == "" {
		t.Fatal("debug listener did not start")
	}
	c := dial(t, s)

	if _, err := c.Generate(Request{Graph: "twt", Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 7, Machines: 2}); err != nil {
		t.Fatal(err)
	}
	const runs = 3
	for i := 0; i < runs; i++ {
		if _, err := c.Run(Request{Graph: "twt", Algo: "pagerank", Iterations: 3}); err != nil {
			t.Fatal(err)
		}
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("UptimeSeconds = %v, want > 0", st.UptimeSeconds)
	}
	if st.RunsServed != runs {
		t.Errorf("RunsServed = %d, want %d", st.RunsServed, runs)
	}
	if st.RunP50Millis <= 0 || st.RunP99Millis < st.RunP50Millis {
		t.Errorf("percentiles p50=%v p99=%v", st.RunP50Millis, st.RunP99Millis)
	}
	// Each pagerank run is several engine jobs (one per superstep).
	if st.JobsObserved < int64(runs)*3 {
		t.Errorf("JobsObserved = %d, want >= %d", st.JobsObserved, runs*3)
	}
	if st.AbortsSeen != 0 || st.LastAbort != nil {
		t.Errorf("unexpected abort accounting: aborts=%d last=%+v", st.AbortsSeen, st.LastAbort)
	}

	// The debug HTTP surface serves registry metrics for the loaded graph.
	resp, err := http.Get("http://" + s.DebugAddr() + "/debug/metrics?graph=twt")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/metrics = %d, want 200", resp.StatusCode)
	}
	var payload struct {
		Jobs     int64            `json:"jobs"`
		Lifetime map[string]int64 `json:"lifetime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Jobs < int64(runs)*3 {
		t.Errorf("debug payload jobs = %d, want >= %d", payload.Jobs, runs*3)
	}

	// With one graph loaded the ?graph= selector is optional.
	resp2, err := http.Get("http://" + s.DebugAddr() + "/debug/server")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("/debug/server = %d, want 200", resp2.StatusCode)
	}
}

func TestStatsDisabledObservability(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.DisableObservability = true
	s := startServer(t, cfg)
	c := dial(t, s)
	if _, err := c.Generate(Request{Graph: "g", Kind: "rmat", Scale: 9, EdgeFactor: 4, Seed: 3, Machines: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(Request{Graph: "g", Algo: "pagerank", Iterations: 2}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsObserved != 0 {
		t.Errorf("JobsObserved = %d with observability disabled, want 0", st.JobsObserved)
	}
	if st.RunsServed != 1 || st.RunP50Millis <= 0 {
		t.Errorf("duration accounting must not depend on registries: %+v", st)
	}
}
