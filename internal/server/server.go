package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/store"
)

// Config bounds the server's resource usage — the paper's open question
// "how should the system assign memory and CPU resources between clients
// while achieving overall fairness and efficiency?" answered with explicit
// admission control: a cap on resident edges (memory proxy), a global cap
// on concurrently running analyses, per-tenant quotas, and priority-with-
// aging admission order.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:7427". Empty picks
	// an ephemeral loopback port (tests).
	Addr string
	// MaxResidentEdges caps the sum of edges across loaded graphs.
	MaxResidentEdges int64
	// MaxConcurrentAnalyses caps simultaneously running algorithms across
	// all graphs and tenants.
	MaxConcurrentAnalyses int
	// AnalysisPoolSize is how many engine clusters each graph instance
	// boots over its shared immutable graph — the number of read-only
	// analyses that can run concurrently on one graph. Default 2.
	AnalysisPoolSize int
	// RunMemoryBudgetMB caps the summed resident-memory need (declared via
	// Request.MaxResidentMB, or estimated from store sizing) of concurrently
	// running analyses. A run that would push the total past the budget
	// queues until enough memory frees (counted as a budget deferral); an
	// idle server always admits. <=0 disables the memory gate.
	RunMemoryBudgetMB int64
	// TenantQuota caps concurrently running analyses per tenant; <=0
	// disables the per-tenant cap.
	TenantQuota int
	// TenantQuotas overrides TenantQuota for specific tenant IDs.
	TenantQuotas map[string]int
	// PriorityAging is how long a queued request waits to gain one
	// priority level (anti-starvation). Default 250ms; <0 disables aging.
	PriorityAging time.Duration
	// DefaultMachines is the simulated cluster size for graphs loaded
	// without an explicit machine count.
	DefaultMachines int
	// DebugAddr, when set, serves the observability debug surface over HTTP
	// (/debug/metrics, /debug/trace, /debug/abort, /debug/pprof/*) on that
	// address. Multi-graph servers select an instance with ?graph=<name>.
	// Empty disables the debug listener.
	DebugAddr string
	// DisableObservability runs instances without registries: no per-job
	// reports or flight recorder, and the extended stats fields stay zero.
	DisableObservability bool

	// runHook, when set, is invoked after a run is admitted (engine held)
	// and before the algorithm starts. Tests use it to hold an engine busy
	// deterministically.
	runHook func(*Request)
}

// DefaultServerConfig returns modest laptop limits.
func DefaultServerConfig() Config {
	return Config{
		Addr:                  "127.0.0.1:0",
		MaxResidentEdges:      64 << 20,
		MaxConcurrentAnalyses: 2,
		AnalysisPoolSize:      2,
		DefaultMachines:       4,
		PriorityAging:         250 * time.Millisecond,
	}
}

// instance is one loaded graph with a pool of engine clusters over the
// shared immutable graph. Read-only analyses lease one engine each and run
// concurrently; exclusive operations (mutate, drop) collect the whole pool.
type instance struct {
	name     string
	machines int
	pool     *enginePool

	// admin serializes exclusive pool acquisition (mutate, drop) — two
	// concurrent acquireAll calls would deadlock splitting the pool.
	admin sync.Mutex

	// gMu guards g and dyn (swapped by mutate while stats may read them).
	gMu sync.Mutex
	g   *graph.Graph
	dyn *graph.Dynamic

	// closed flips when the instance is dropped so queued tickets fail
	// instead of waiting on a pool that will never refill.
	closed atomic.Bool
}

// graphSnapshot returns the instance's current graph.
func (inst *instance) graphSnapshot() *graph.Graph {
	inst.gMu.Lock()
	defer inst.gMu.Unlock()
	return inst.g
}

// Server is the long-running multi-tenant engine host.
type Server struct {
	cfg      Config
	listener net.Listener

	mu        sync.Mutex
	instances map[string]*instance
	resident  int64
	conns     map[net.Conn]struct{}

	sched *scheduler
	// doneCh closes when Close begins: queued admissions and exclusive
	// waits abort with a clean error instead of wedging.
	doneCh chan struct{}

	runsServed       atomic.Int64
	failedRuns       atomic.Int64
	active           atomic.Int64
	deadlineExceeded atomic.Int64
	canceledRuns     atomic.Int64

	// tenants accumulates per-tenant served/failed counters.
	tenantMu sync.Mutex
	tenants  map[string]*tenantCounters

	// reg is the server's own observability registry (queue-wait and
	// run-latency histograms); nil with observability disabled.
	reg *obs.Registry

	start time.Time

	// durs is a sliding window of recent analysis durations (milliseconds)
	// backing the stats percentiles.
	durMu   sync.Mutex
	durs    []float64
	durNext int

	debugLn  net.Listener
	debugSrv *http.Server

	wg     sync.WaitGroup
	closed atomic.Bool
}

// tenantCounters is the mutable backing of TenantStats.
type tenantCounters struct {
	served atomic.Int64
	failed atomic.Int64
}

// runDurWindow is the sliding-window size for run-duration percentiles.
const runDurWindow = 512

// New starts a server listening per cfg. Call Close to stop.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.MaxConcurrentAnalyses < 1 {
		cfg.MaxConcurrentAnalyses = 1
	}
	if cfg.AnalysisPoolSize < 1 {
		cfg.AnalysisPoolSize = 1
	}
	if cfg.DefaultMachines < 1 {
		cfg.DefaultMachines = 1
	}
	if cfg.PriorityAging == 0 {
		cfg.PriorityAging = 250 * time.Millisecond
	}
	l, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:       cfg,
		listener:  l,
		instances: make(map[string]*instance),
		conns:     make(map[net.Conn]struct{}),
		tenants:   make(map[string]*tenantCounters),
		doneCh:    make(chan struct{}),
		sched: newScheduler(cfg.MaxConcurrentAnalyses, cfg.TenantQuota,
			cfg.TenantQuotas, cfg.PriorityAging, cfg.RunMemoryBudgetMB),
		start: time.Now(),
	}
	if !cfg.DisableObservability {
		s.reg = obs.NewRegistry()
		s.reg.Attach(1)
	}
	if cfg.DebugAddr != "" {
		dl, err := net.Listen("tcp", cfg.DebugAddr)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("server: debug listen %s: %w", cfg.DebugAddr, err)
		}
		s.debugLn = dl
		s.debugSrv = &http.Server{Handler: s.debugHandler()}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.debugSrv.Serve(dl)
		}()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// DebugAddr returns the bound debug HTTP address, or "" when disabled.
func (s *Server) DebugAddr() string {
	if s.debugLn == nil {
		return ""
	}
	return s.debugLn.Addr().String()
}

// debugHandler routes the observability debug surface. The registry
// endpoints dispatch per instance: with one graph loaded it is implicit,
// otherwise ?graph=<name> selects it; ?engine=<idx> selects a pool engine
// (default 0). /debug/server reports the same stats as the wire protocol's
// stats op.
func (s *Server) debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/server", func(w http.ResponseWriter, r *http.Request) {
		resp := s.handleStats()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp.Stats)
	})
	forward := func(w http.ResponseWriter, r *http.Request) {
		reg, err := s.pickRegistry(r.URL.Query().Get("graph"), r.URL.Query().Get("engine"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		reg.Handler().ServeHTTP(w, r)
	}
	mux.HandleFunc("/debug/metrics", forward)
	mux.HandleFunc("/debug/trace", forward)
	mux.HandleFunc("/debug/abort", forward)
	// pprof profiles the whole process; any instance's handler serves it,
	// but it must work with zero graphs loaded too, so forward to a fresh
	// registry's mux (the pprof routes don't touch registry state).
	mux.Handle("/debug/pprof/", obs.NewRegistry().Handler())
	return mux
}

// pickRegistry resolves the registry the debug surface should read: the
// named graph (or the single loaded instance when the name is empty), and
// within it the selected pool engine (default 0).
func (s *Server) pickRegistry(name, engineIdx string) (*obs.Registry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var inst *instance
	if name != "" {
		inst = s.instances[name]
		if inst == nil {
			return nil, fmt.Errorf("graph %q not loaded", name)
		}
	} else {
		if len(s.instances) != 1 {
			return nil, fmt.Errorf("%d graphs loaded; select one with ?graph=<name>", len(s.instances))
		}
		for _, i := range s.instances {
			inst = i
		}
	}
	var reg *obs.Registry
	if engineIdx != "" {
		idx, err := strconv.Atoi(engineIdx)
		if err != nil || idx < 0 || idx >= len(inst.pool.all) {
			return nil, fmt.Errorf("bad engine index %q (pool size %d)", engineIdx, len(inst.pool.all))
		}
		reg = inst.pool.all[idx].reg
	} else {
		// Default to the pool engine that has executed the most jobs — with
		// light load the whole history tends to live on one engine.
		var best int64 = -1
		for _, eng := range inst.pool.all {
			if n := eng.reg.JobsObserved(); n > best {
				best, reg = n, eng.reg
			}
		}
	}
	if reg == nil {
		return nil, fmt.Errorf("observability disabled")
	}
	return reg, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops accepting, fails queued admissions, cancels running engine
// jobs, drains handlers, and shuts down all engines. A request parked in
// the admission queue gets a clean "shutting down" error response before
// its connection closes — Close never wedges behind a queued run.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.listener.Close()
	if s.debugSrv != nil {
		s.debugSrv.Close()
	}
	// Wake queued admissions and exclusive waits first: their handlers
	// write error responses while the write half of each conn still works.
	close(s.doneCh)
	// Abort running engine jobs through the cancellation latch so leases
	// come back promptly instead of after many supersteps.
	s.sched.cancelAll(errShutdown)
	// Unblock handlers parked reading from idle clients, keeping the write
	// half open so in-flight responses (including the shutdown errors
	// above) can flush.
	s.mu.Lock()
	for conn := range s.conns {
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseRead()
		} else {
			conn.Close()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, inst := range s.instances {
		inst.closed.Store(true)
		for _, eng := range inst.pool.all {
			eng.cluster.Shutdown()
		}
		delete(s.instances, name)
	}
}

// cancelAll cancels every running engine lease (shutdown path).
func (s *scheduler) cancelAll(cause error) {
	s.mu.Lock()
	engines := make([]*engine, 0, len(s.running))
	for _, eng := range s.running {
		engines = append(engines, eng)
	}
	s.mu.Unlock()
	for _, eng := range engines {
		eng.cluster.Cancel(cause)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one client: a stream of JSON-line requests.
func (s *Server) serveConn(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // disconnect or garbage; drop the session
		}
		resp := s.handle(&req)
		if err := encode(enc, resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *Request) Response {
	switch req.Op {
	case "load":
		return s.handleLoad(req)
	case "generate":
		return s.handleGenerate(req)
	case "run":
		return s.handleRun(req)
	case "cancel":
		return s.handleCancel(req)
	case "list":
		return s.handleList()
	case "mutate":
		return s.handleMutate(req)
	case "drop":
		return s.handleDrop(req)
	case "stats":
		return s.handleStats()
	default:
		return errResp("unknown op %q", req.Op)
	}
}

// bootEngines builds the instance's engine pool: AnalysisPoolSize clusters,
// each with its own registry, all loaded with the same immutable graph.
func (s *Server) bootEngines(g *graph.Graph, machines int) ([]*engine, error) {
	n := s.cfg.AnalysisPoolSize
	engines := make([]*engine, 0, n)
	fail := func(err error) ([]*engine, error) {
		for _, e := range engines {
			e.cluster.Shutdown()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		cfg := core.DefaultConfig(machines)
		if !s.cfg.DisableObservability {
			cfg.Obs = obs.NewRegistry()
		}
		cluster, err := core.NewCluster(cfg)
		if err != nil {
			return fail(fmt.Errorf("boot cluster: %w", err))
		}
		engines = append(engines, &engine{idx: i, cluster: cluster, reg: cfg.Obs})
		if err := cluster.Load(g); err != nil {
			return fail(fmt.Errorf("distribute graph: %w", err))
		}
	}
	return engines, nil
}

// admit installs a new instance under the resident-edge budget.
func (s *Server) admit(name string, g *graph.Graph, machines int) (Response, bool) {
	engines, err := s.bootEngines(g, machines)
	if err != nil {
		return errResp("%v", err), false
	}
	inst := &instance{name: name, g: g, machines: machines, pool: newEnginePool(engines)}
	s.mu.Lock()
	defer s.mu.Unlock()
	shutdownAll := func() {
		for _, e := range engines {
			e.cluster.Shutdown()
		}
	}
	if _, exists := s.instances[name]; exists {
		shutdownAll()
		return errResp("graph %q already loaded", name), false
	}
	if s.cfg.MaxResidentEdges > 0 && s.resident+g.NumEdges() > s.cfg.MaxResidentEdges {
		shutdownAll()
		return errResp("resident edge budget exceeded: %d + %d > %d",
			s.resident, g.NumEdges(), s.cfg.MaxResidentEdges), false
	}
	s.instances[name] = inst
	s.resident += g.NumEdges()
	return Response{OK: true, Graphs: []GraphInfo{s.info(inst)}}, true
}

func (s *Server) info(inst *instance) GraphInfo {
	g := inst.graphSnapshot()
	return GraphInfo{
		Name:     inst.name,
		Nodes:    g.NumNodes(),
		Edges:    g.NumEdges(),
		Weighted: g.Weighted(),
		Machines: inst.machines,
		Ghosts:   inst.pool.all[0].cluster.NumGhosts(),
	}
}

func (s *Server) machinesFor(req *Request) int {
	if req.Machines > 0 {
		return req.Machines
	}
	return s.cfg.DefaultMachines
}

func (s *Server) handleLoad(req *Request) Response {
	if req.Graph == "" || req.Path == "" {
		return errResp("load needs graph and path")
	}
	f, err := os.Open(req.Path)
	if err != nil {
		return errResp("open %s: %v", req.Path, err)
	}
	defer f.Close()
	var g *graph.Graph
	if strings.HasSuffix(req.Path, ".bin") {
		g, err = graph.ReadBinary(f)
	} else {
		g, err = graph.ReadEdgeList(f)
	}
	if err != nil {
		return errResp("parse %s: %v", req.Path, err)
	}
	resp, _ := s.admit(req.Graph, g, s.machinesFor(req))
	return resp
}

func (s *Server) handleGenerate(req *Request) Response {
	if req.Graph == "" {
		return errResp("generate needs graph")
	}
	var g *graph.Graph
	var err error
	switch req.Kind {
	case "rmat", "":
		scale, ef := req.Scale, req.EdgeFactor
		if scale == 0 {
			scale = 14
		}
		if ef == 0 {
			ef = 16
		}
		g, err = graph.RMAT(scale, ef, graph.TwitterLike(), req.Seed)
	case "uniform":
		n, m := req.Nodes, req.Edges
		if n == 0 {
			n = 1 << 14
		}
		if m == 0 {
			m = n * 16
		}
		g, err = graph.Uniform(n, m, req.Seed)
	case "grid":
		n := req.Nodes
		if n == 0 {
			n = 100
		}
		g, err = graph.Grid(n, n, n/2, req.Seed)
	default:
		return errResp("unknown generator %q", req.Kind)
	}
	if err != nil {
		return errResp("generate: %v", err)
	}
	if req.WeightHi > req.WeightLo {
		g = g.WithUniformWeights(req.WeightLo, req.WeightHi, req.Seed)
	}
	resp, _ := s.admit(req.Graph, g, s.machinesFor(req))
	return resp
}

// maxPriority clamps client-supplied priorities to [-8, 8].
const maxPriority = 8

// propColsFor returns the peak number of live O(N) property columns the named
// algorithm registers, so the admission memory gate charges what the run will
// actually pin instead of a flat allowance. Unknown algorithms (the request
// will fail later with "unknown algorithm") get the historical allowance of 3.
func propColsFor(algo string) int {
	switch algo {
	case "pagerank", "pagerank-push": // rank, next, degree
		return 3
	case "pagerank-approx": // rank, residual, degree + frontier doubles
		return 5
	case "eigenvector": // value, next
		return 2
	case "wcc": // label, next, changed
		return 3
	case "sssp": // dist, next, changed
		return 3
	case "hopdist": // dist, next, changed
		return 3
	case "kcore": // degree, alive, removed, core
		return 4
	case "triangles": // marks
		return 1
	case "ppr": // rank, next, degree, mask
		return 4
	default:
		return 3
	}
}

// tenantOf maps the wire tenant field to an accounting key.
func tenantOf(req *Request) string {
	if req.Tenant == "" {
		return "default"
	}
	return req.Tenant
}

// tenantCountersFor returns (creating if needed) tenant's counters.
func (s *Server) tenantCountersFor(tenant string) *tenantCounters {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	tc := s.tenants[tenant]
	if tc == nil {
		tc = &tenantCounters{}
		s.tenants[tenant] = tc
	}
	return tc
}

// handleRun admits an analysis through the scheduler, executes it on a
// leased engine, and classifies the outcome. Admission charges a global
// slot only when the run can actually execute (idle engine on the target
// graph, tenant under quota), so a busy graph never starves requests for
// other graphs. A queued request always has an exit: its deadline, an
// op=cancel matching its tag, or server shutdown.
func (s *Server) handleRun(req *Request) Response {
	s.mu.Lock()
	inst, ok := s.instances[req.Graph]
	s.mu.Unlock()
	if !ok {
		return errResp("graph %q not loaded", req.Graph)
	}
	tenant := tenantOf(req)
	tc := s.tenantCountersFor(tenant)
	prio := req.Priority
	if prio > maxPriority {
		prio = maxPriority
	}
	if prio < -maxPriority {
		prio = -maxPriority
	}
	// Memory-gate charge: the client's declared need, or — only when a
	// budget is actually configured — the store-sizing estimate of what an
	// engine run on this graph pins resident.
	memMB := req.MaxResidentMB
	if memMB <= 0 && s.cfg.RunMemoryBudgetMB > 0 {
		g := inst.graphSnapshot()
		memMB = store.SizeOf(g.NumNodes(), g.NumEdges(), inst.machines, g.Weighted(),
			propColsFor(req.Algo)).EstimatedResidentMB()
	}
	t := &ticket{
		tenant:   tenant,
		tag:      req.Tag,
		priority: prio,
		enqueued: time.Now(),
		inst:     inst,
		memMB:    memMB,
		result:   make(chan admitResult, 1),
	}
	var deadline <-chan time.Time
	var deadlineTimer *time.Timer
	if req.TimeoutMillis > 0 {
		deadlineTimer = time.NewTimer(time.Duration(req.TimeoutMillis) * time.Millisecond)
		defer deadlineTimer.Stop()
		deadline = deadlineTimer.C
	}
	jobID := s.sched.enqueue(t)

	fail := func(format string, args ...any) Response {
		s.failedRuns.Add(1)
		tc.failed.Add(1)
		return errResp(format, args...)
	}

	var admitted admitResult
	select {
	case admitted = <-t.result:
	case <-deadline:
		if s.sched.remove(t) {
			s.deadlineExceeded.Add(1)
			return fail("run on %s: deadline exceeded after %dms in queue",
				req.Graph, req.TimeoutMillis)
		}
		// Admitted concurrently with expiry: take the lease and let the
		// armed deadline below cancel the run almost immediately.
		admitted = <-t.result
	case <-s.doneCh:
		if !s.sched.remove(t) {
			// Admitted concurrently with shutdown: hand the lease back.
			if got := <-t.result; got.eng != nil {
				s.sched.release(t)
			}
		}
		return fail("run on %s: %v", req.Graph, errShutdown)
	}
	if admitted.err != nil {
		if errors.Is(admitted.err, errRunCanceled) {
			s.canceledRuns.Add(1)
		}
		return fail("run on %s: %v", req.Graph, admitted.err)
	}

	eng := admitted.eng
	// Clear stickiness a late-firing deadline timer from a previous lease
	// may have left on this engine.
	eng.cluster.Uncancel()
	queueWait := time.Since(t.enqueued)
	s.reg.Observe(0, obs.HistQueueWait, queueWait)
	s.active.Add(1)
	defer func() {
		s.active.Add(-1)
		// Clear any sticky cancel so the next lease of this engine starts
		// clean, then return it to the pool.
		eng.cluster.Uncancel()
		s.sched.release(t)
	}()

	// Arm the remaining deadline against the engine: expiry fires the
	// core cancellation latch, aborting the job in flight — not the server.
	var deadlineHit atomic.Bool
	if req.TimeoutMillis > 0 {
		remaining := time.Duration(req.TimeoutMillis)*time.Millisecond - queueWait
		if remaining < 0 {
			remaining = 0
		}
		timer := time.AfterFunc(remaining, func() {
			deadlineHit.Store(true)
			eng.cluster.Cancel(fmt.Errorf("deadline exceeded after %dms", req.TimeoutMillis))
		})
		defer timer.Stop()
	}
	if s.cfg.runHook != nil {
		s.cfg.runHook(req)
	}

	start := time.Now()
	result, err := runAlgo(inst, eng, req)
	runDur := time.Since(start)
	if err != nil {
		// Engine-level job aborts (transport faults, cancellation,
		// deadlines) surface here as error responses — the server and its
		// other engines stay up.
		switch {
		case deadlineHit.Load() || strings.Contains(err.Error(), "deadline exceeded"):
			s.deadlineExceeded.Add(1)
		case errors.Is(err, core.ErrJobCanceled):
			s.canceledRuns.Add(1)
		}
		return fail("%s on %s: %v", req.Algo, req.Graph, err)
	}
	s.reg.Observe(0, obs.HistRunLatency, runDur)
	result.Millis = float64(runDur.Microseconds()) / 1000
	result.JobID = jobID
	result.QueueMillis = float64(queueWait.Microseconds()) / 1000
	s.recordRunDuration(result.Millis)
	s.runsServed.Add(1)
	tc.served.Add(1)
	return Response{OK: true, Result: result}
}

// handleCancel kills runs carrying req.Tag: queued ones are rejected with
// a cancel error, running ones have their engine job aborted through the
// core cancellation latch. With req.Tenant set, only that tenant's runs
// match.
func (s *Server) handleCancel(req *Request) Response {
	if req.Tag == "" {
		return errResp("cancel needs tag")
	}
	cause := fmt.Errorf("canceled by tag %q", req.Tag)
	n := s.sched.cancelByTag(req.Tag, req.Tenant, cause)
	return Response{OK: true, Result: &RunResult{
		Algo:  "cancel",
		Extra: fmt.Sprintf("%d runs canceled", n),
	}}
}

// recordRunDuration appends one analysis duration to the percentile window.
func (s *Server) recordRunDuration(millis float64) {
	s.durMu.Lock()
	if len(s.durs) < runDurWindow {
		s.durs = append(s.durs, millis)
	} else {
		s.durs[s.durNext%runDurWindow] = millis
	}
	s.durNext++
	s.durMu.Unlock()
}

// nearestRank returns the q-quantile of sorted using the nearest-rank
// method: the smallest element such that at least q*n elements are <= it,
// i.e. index ceil(q*n)-1. (The previous int(q*n) truncation was biased one
// rank high: p50 of two samples returned the max.)
func nearestRank(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}

// runPercentiles returns the (p50, p90, p99) of the duration window, or
// zeros with no completed runs.
func (s *Server) runPercentiles() (p50, p90, p99 float64) {
	s.durMu.Lock()
	window := make([]float64, len(s.durs))
	copy(window, s.durs)
	s.durMu.Unlock()
	if len(window) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(window)
	return nearestRank(window, 0.50), nearestRank(window, 0.90), nearestRank(window, 0.99)
}

func runAlgo(inst *instance, eng *engine, req *Request) (*RunResult, error) {
	iters := req.Iterations
	if iters <= 0 {
		iters = 10
	}
	damping := req.Damping
	if damping == 0 {
		damping = 0.85
	}
	threshold := req.Threshold
	if threshold == 0 {
		threshold = 1e-7
	}
	topK := req.TopK
	if topK <= 0 {
		topK = 5
	}
	g := inst.graphSnapshot()
	c := eng.cluster
	res := &RunResult{Algo: req.Algo}
	var f64s []float64
	var i64s []int64
	var met algorithms.Metrics
	var err error
	descending := true
	switch req.Algo {
	case "pagerank":
		f64s, met, err = algorithms.PageRankPull(c, iters, damping)
	case "pagerank-push":
		f64s, met, err = algorithms.PageRankPush(c, iters, damping)
	case "pagerank-approx":
		f64s, met, err = algorithms.PageRankApprox(c, damping, threshold, 100000)
	case "eigenvector":
		f64s, met, err = algorithms.Eigenvector(c, iters)
	case "wcc":
		i64s, met, err = algorithms.WCC(c, 100000)
		if err == nil {
			comps := map[int64]bool{}
			for _, l := range i64s {
				comps[l] = true
			}
			res.Extra = fmt.Sprintf("%d components", len(comps))
		}
	case "sssp":
		if !g.Weighted() {
			return nil, fmt.Errorf("graph is unweighted")
		}
		f64s, met, err = algorithms.SSSP(c, req.Source, 100000)
		descending = false
	case "hopdist":
		i64s, met, err = algorithms.HopDist(c, req.Source, 100000)
		descending = false
	case "kcore":
		var best int64
		best, i64s, met, err = algorithms.KCore(c, 0)
		if err == nil {
			res.Extra = fmt.Sprintf("max core %d", best)
		}
	case "triangles":
		var total int64
		total, met, err = algorithms.TriangleCount(c, g)
		if err == nil {
			res.Extra = fmt.Sprintf("%d transitive triads", total)
		}
	case "ppr":
		f64s, met, err = algorithms.PersonalizedPageRank(c, []graph.NodeID{req.Source}, iters, damping)
	default:
		return nil, fmt.Errorf("unknown algorithm %q", req.Algo)
	}
	if err != nil {
		return nil, err
	}
	res.Iterations = met.Iterations
	res.TopVertices = topVertices(f64s, i64s, topK, descending)
	return res, nil
}

func topVertices(f64s []float64, i64s []int64, k int, descending bool) []TopVertex {
	var all []TopVertex
	switch {
	case f64s != nil:
		for n, v := range f64s {
			if !math.IsInf(v, 0) && !math.IsNaN(v) {
				all = append(all, TopVertex{Node: uint32(n), Value: v})
			}
		}
	case i64s != nil:
		for n, v := range i64s {
			if v != math.MaxInt64 {
				all = append(all, TopVertex{Node: uint32(n), Value: float64(v)})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if descending {
			return all[i].Value > all[j].Value
		}
		return all[i].Value < all[j].Value
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// handleMutate applies an edge batch to a loaded instance and reloads the
// engine pool from a fresh snapshot (§6: "using snapshots of these graphs
// for algorithms which do not support graph updates"). Mutation is
// exclusive: it collects every engine in the pool, so in-flight analyses
// finish on the old graph before the swap.
func (s *Server) handleMutate(req *Request) Response {
	s.mu.Lock()
	inst, ok := s.instances[req.Graph]
	s.mu.Unlock()
	if !ok {
		return errResp("graph %q not loaded", req.Graph)
	}
	inst.admin.Lock()
	defer inst.admin.Unlock()
	engines, err := inst.pool.acquireAll(s.doneCh)
	if err != nil {
		return errResp("mutate %s: %v", req.Graph, err)
	}
	defer func() {
		inst.pool.releaseAll(engines)
		s.sched.dispatch()
	}()
	inst.gMu.Lock()
	if inst.dyn == nil {
		inst.dyn = graph.DynamicFrom(inst.g)
	}
	dyn, oldG := inst.dyn, inst.g
	inst.gMu.Unlock()
	toEdges := func(specs []EdgeSpec) ([]graph.Edge, bool) {
		out := make([]graph.Edge, len(specs))
		weighted := false
		for i, e := range specs {
			out[i] = graph.Edge{Src: e.Src, Dst: e.Dst, Weight: e.Weight}
			if e.Weight != 0 {
				weighted = true
			}
		}
		return out, weighted
	}
	add, addWeighted := toEdges(req.Add)
	remove, _ := toEdges(req.Remove)
	matched, err := dyn.Apply(add, remove, addWeighted || oldG.Weighted())
	if err != nil {
		return errResp("mutate %s: %v", req.Graph, err)
	}
	snap, err := dyn.Snapshot()
	if err != nil {
		return errResp("snapshot %s: %v", req.Graph, err)
	}
	for _, eng := range engines {
		if err := eng.cluster.Load(snap); err != nil {
			return errResp("reload %s: %v", req.Graph, err)
		}
	}
	s.mu.Lock()
	s.resident += snap.NumEdges() - oldG.NumEdges()
	s.mu.Unlock()
	inst.gMu.Lock()
	inst.g = snap
	inst.gMu.Unlock()
	return Response{
		OK:     true,
		Graphs: []GraphInfo{s.info(inst)},
		Result: &RunResult{Algo: "mutate", Extra: fmt.Sprintf("%d removals matched", matched)},
	}
}

func (s *Server) handleList() Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := Response{OK: true}
	names := make([]string, 0, len(s.instances))
	for name := range s.instances {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		resp.Graphs = append(resp.Graphs, s.info(s.instances[name]))
	}
	return resp
}

// handleDrop unloads a graph: queued runs for it fail with a "dropped"
// error, in-flight analyses finish (drop collects the whole pool), then
// every engine shuts down.
func (s *Server) handleDrop(req *Request) Response {
	s.mu.Lock()
	inst, ok := s.instances[req.Graph]
	if ok {
		delete(s.instances, req.Graph)
		s.resident -= inst.graphSnapshot().NumEdges()
	}
	s.mu.Unlock()
	if !ok {
		return errResp("graph %q not loaded", req.Graph)
	}
	inst.closed.Store(true)
	s.sched.dispatch() // flush queued tickets targeting the dropped graph
	inst.admin.Lock()
	defer inst.admin.Unlock()
	engines, err := inst.pool.acquireAll(s.doneCh)
	if err != nil {
		// Shutdown race: Close owns the engines now and will stop them.
		return errResp("drop %s: %v", req.Graph, err)
	}
	for _, eng := range engines {
		eng.cluster.Shutdown()
	}
	return Response{OK: true}
}

func (s *Server) handleStats() Response {
	s.mu.Lock()
	var transportErrors, jobs, aborts int64
	var wireRaw, wireBytes int64
	var stealReqs, stealGrants, stolenNodes, stolenEdges, staleWrites int64
	var decHits, decMisses, decBytes, decEvicted, resTouched, resEvicted int64
	var lastAbort *AbortSummary
	var lastWhen time.Time
	poolSize := s.cfg.AnalysisPoolSize
	for _, inst := range s.instances {
		for _, eng := range inst.pool.all {
			snap := eng.cluster.TrafficSnapshot()
			transportErrors += snap.SendErrors + snap.RecvErrors
			wireRaw += snap.CompressRawBytes
			wireBytes += snap.CompressWireBytes
			jobs += eng.reg.JobsObserved()
			aborts += eng.reg.AbortsObserved()
			ctrs := eng.reg.LifetimeCounters()
			stealReqs += ctrs["steal_requests"]
			stealGrants += ctrs["steal_grants"]
			stolenNodes += ctrs["stolen_nodes"]
			stolenEdges += ctrs["stolen_edges"]
			staleWrites += ctrs["stale_write_frames"]
			decHits += ctrs["decode_hits"]
			decMisses += ctrs["decode_misses"]
			decBytes += ctrs["decoded_bytes"]
			decEvicted += ctrs["decode_evicted_bytes"]
			resTouched += ctrs["residency_touched_bytes"]
			resEvicted += ctrs["residency_evicted_bytes"]
			if d := eng.reg.LastAbort(); d != nil && d.When.After(lastWhen) {
				lastWhen = d.When
				lastAbort = &AbortSummary{
					Graph:      inst.name,
					Job:        d.Job,
					Name:       d.Name,
					Err:        d.Err,
					AgeSeconds: time.Since(d.When).Seconds(),
					Spans:      len(d.Spans),
				}
			}
		}
	}
	loaded := len(s.instances)
	resident := s.resident
	s.mu.Unlock()
	p50, p90, p99 := s.runPercentiles()
	compressionRatio := 1.0
	if wireRaw > 0 {
		compressionRatio = float64(wireBytes) / float64(wireRaw)
	}
	var queueP50, queueP99 float64
	if s.reg != nil {
		h := s.reg.LifetimeHistogram(obs.HistQueueWait)
		queueP50 = h.Quantile(0.50).Seconds() * 1000
		queueP99 = h.Quantile(0.99).Seconds() * 1000
	}
	memInUse, memDeferrals := s.sched.memStats()
	running, queued := s.sched.tenantLoad()
	s.tenantMu.Lock()
	tenants := make(map[string]*TenantStats, len(s.tenants))
	for name, tc := range s.tenants {
		tenants[name] = &TenantStats{
			Served:  tc.served.Load(),
			Failed:  tc.failed.Load(),
			Running: running[name],
			Queued:  queued[name],
		}
	}
	s.tenantMu.Unlock()
	return Response{OK: true, Stats: &ServerStats{
		LoadedGraphs:          loaded,
		ResidentEdges:         resident,
		MaxEdges:              s.cfg.MaxResidentEdges,
		RunsServed:            s.runsServed.Load(),
		FailedRuns:            s.failedRuns.Load(),
		ActiveAnalyses:        int(s.active.Load()),
		TransportErrors:       transportErrors,
		WireRawBytes:          wireRaw,
		WireBytes:             wireBytes,
		WireSavedBytes:        wireRaw - wireBytes,
		CompressionRatio:      compressionRatio,
		StealRequests:         stealReqs,
		StealGrants:           stealGrants,
		StolenNodes:           stolenNodes,
		StolenEdges:           stolenEdges,
		StaleWriteFrames:      staleWrites,
		DecodeHits:            decHits,
		DecodeMisses:          decMisses,
		DecodedBytes:          decBytes,
		DecodeEvictedBytes:    decEvicted,
		ResidencyTouchedBytes: resTouched,
		ResidencyEvictedBytes: resEvicted,
		UptimeSeconds:         time.Since(s.start).Seconds(),
		RunP50Millis:          p50,
		RunP90Millis:          p90,
		RunP99Millis:          p99,
		JobsObserved:          jobs,
		AbortsSeen:            aborts,
		QueuedAnalyses:        s.sched.queueLen(),
		EnginePoolSize:        poolSize,
		BudgetDeferrals:       memDeferrals,
		MemInUseMB:            memInUse,
		DeadlineExceededRuns:  s.deadlineExceeded.Load(),
		CanceledRuns:          s.canceledRuns.Load(),
		QueueP50Millis:        queueP50,
		QueueP99Millis:        queueP99,
		Tenants:               tenants,
		LastAbort:             lastAbort,
	}}
}
