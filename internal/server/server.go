package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Config bounds the server's resource usage — the paper's open question
// "how should the system assign memory and CPU resources between clients
// while achieving overall fairness and efficiency?" answered with explicit
// admission control: a cap on resident edges (memory proxy) and a cap on
// concurrently running analyses (CPU proxy, FIFO-fair via semaphore).
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:7427". Empty picks
	// an ephemeral loopback port (tests).
	Addr string
	// MaxResidentEdges caps the sum of edges across loaded graphs.
	MaxResidentEdges int64
	// MaxConcurrentAnalyses caps simultaneously running algorithms.
	MaxConcurrentAnalyses int
	// DefaultMachines is the simulated cluster size for graphs loaded
	// without an explicit machine count.
	DefaultMachines int
	// DebugAddr, when set, serves the observability debug surface over HTTP
	// (/debug/metrics, /debug/trace, /debug/abort, /debug/pprof/*) on that
	// address. Multi-graph servers select an instance with ?graph=<name>.
	// Empty disables the debug listener.
	DebugAddr string
	// DisableObservability runs instances without registries: no per-job
	// reports or flight recorder, and the extended stats fields stay zero.
	DisableObservability bool
}

// DefaultServerConfig returns modest laptop limits.
func DefaultServerConfig() Config {
	return Config{
		Addr:                  "127.0.0.1:0",
		MaxResidentEdges:      64 << 20,
		MaxConcurrentAnalyses: 2,
		DefaultMachines:       4,
	}
}

// instance is one loaded graph with its engine. mu serializes analyses on
// this instance (one engine runs one job stream); different instances run
// concurrently.
type instance struct {
	mu       sync.Mutex
	name     string
	g        *graph.Graph
	dyn      *graph.Dynamic
	cluster  *core.Cluster
	machines int
	// reg is this instance's observability registry (its cluster's
	// Config.Obs); nil when the server runs with observability disabled.
	reg *obs.Registry
}

// Server is the long-running multi-tenant engine host.
type Server struct {
	cfg      Config
	listener net.Listener

	mu        sync.Mutex
	instances map[string]*instance
	resident  int64
	conns     map[net.Conn]struct{}

	runSem     chan struct{}
	runsServed atomic.Int64
	failedRuns atomic.Int64
	active     atomic.Int64

	start time.Time

	// durs is a sliding window of recent analysis durations (milliseconds)
	// backing the stats percentiles.
	durMu   sync.Mutex
	durs    []float64
	durNext int

	debugLn  net.Listener
	debugSrv *http.Server

	wg     sync.WaitGroup
	closed atomic.Bool
}

// runDurWindow is the sliding-window size for run-duration percentiles.
const runDurWindow = 512

// New starts a server listening per cfg. Call Close to stop.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.MaxConcurrentAnalyses < 1 {
		cfg.MaxConcurrentAnalyses = 1
	}
	if cfg.DefaultMachines < 1 {
		cfg.DefaultMachines = 1
	}
	l, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:       cfg,
		listener:  l,
		instances: make(map[string]*instance),
		conns:     make(map[net.Conn]struct{}),
		runSem:    make(chan struct{}, cfg.MaxConcurrentAnalyses),
		start:     time.Now(),
	}
	if cfg.DebugAddr != "" {
		dl, err := net.Listen("tcp", cfg.DebugAddr)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("server: debug listen %s: %w", cfg.DebugAddr, err)
		}
		s.debugLn = dl
		s.debugSrv = &http.Server{Handler: s.debugHandler()}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.debugSrv.Serve(dl)
		}()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// DebugAddr returns the bound debug HTTP address, or "" when disabled.
func (s *Server) DebugAddr() string {
	if s.debugLn == nil {
		return ""
	}
	return s.debugLn.Addr().String()
}

// debugHandler routes the observability debug surface. The registry
// endpoints dispatch per instance: with one graph loaded it is implicit,
// otherwise ?graph=<name> selects it. /debug/server reports the same stats
// as the wire protocol's stats op.
func (s *Server) debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/server", func(w http.ResponseWriter, r *http.Request) {
		resp := s.handleStats()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp.Stats)
	})
	forward := func(w http.ResponseWriter, r *http.Request) {
		reg, err := s.pickRegistry(r.URL.Query().Get("graph"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		reg.Handler().ServeHTTP(w, r)
	}
	mux.HandleFunc("/debug/metrics", forward)
	mux.HandleFunc("/debug/trace", forward)
	mux.HandleFunc("/debug/abort", forward)
	// pprof profiles the whole process; any instance's handler serves it,
	// but it must work with zero graphs loaded too, so forward to a fresh
	// registry's mux (the pprof routes don't touch registry state).
	mux.Handle("/debug/pprof/", obs.NewRegistry().Handler())
	return mux
}

// pickRegistry resolves the instance the debug surface should read: the
// named graph, or the single loaded instance when the name is empty.
func (s *Server) pickRegistry(name string) (*obs.Registry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var inst *instance
	if name != "" {
		inst = s.instances[name]
		if inst == nil {
			return nil, fmt.Errorf("graph %q not loaded", name)
		}
	} else {
		if len(s.instances) != 1 {
			return nil, fmt.Errorf("%d graphs loaded; select one with ?graph=<name>", len(s.instances))
		}
		for _, i := range s.instances {
			inst = i
		}
	}
	if inst.reg == nil {
		return nil, fmt.Errorf("observability disabled")
	}
	return inst.reg, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops accepting, shuts down all engines, and waits for handlers.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.listener.Close()
	if s.debugSrv != nil {
		s.debugSrv.Close()
	}
	// Unblock handlers parked reading from idle clients.
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, inst := range s.instances {
		inst.mu.Lock()
		inst.cluster.Shutdown()
		inst.mu.Unlock()
		delete(s.instances, name)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one client: a stream of JSON-line requests.
func (s *Server) serveConn(conn net.Conn) {
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // disconnect or garbage; drop the session
		}
		resp := s.handle(&req)
		if err := encode(enc, resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *Request) Response {
	switch req.Op {
	case "load":
		return s.handleLoad(req)
	case "generate":
		return s.handleGenerate(req)
	case "run":
		return s.handleRun(req)
	case "list":
		return s.handleList()
	case "mutate":
		return s.handleMutate(req)
	case "drop":
		return s.handleDrop(req)
	case "stats":
		return s.handleStats()
	default:
		return errResp("unknown op %q", req.Op)
	}
}

// admit installs a new instance under the resident-edge budget.
func (s *Server) admit(name string, g *graph.Graph, machines int) (Response, bool) {
	cfg := core.DefaultConfig(machines)
	if !s.cfg.DisableObservability {
		cfg.Obs = obs.NewRegistry()
	}
	cluster, err := core.NewCluster(cfg)
	if err != nil {
		return errResp("boot cluster: %v", err), false
	}
	if err := cluster.Load(g); err != nil {
		cluster.Shutdown()
		return errResp("distribute graph: %v", err), false
	}
	inst := &instance{name: name, g: g, cluster: cluster, machines: machines, reg: cfg.Obs}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.instances[name]; exists {
		cluster.Shutdown()
		return errResp("graph %q already loaded", name), false
	}
	if s.cfg.MaxResidentEdges > 0 && s.resident+g.NumEdges() > s.cfg.MaxResidentEdges {
		cluster.Shutdown()
		return errResp("resident edge budget exceeded: %d + %d > %d",
			s.resident, g.NumEdges(), s.cfg.MaxResidentEdges), false
	}
	s.instances[name] = inst
	s.resident += g.NumEdges()
	return Response{OK: true, Graphs: []GraphInfo{s.info(inst)}}, true
}

func (s *Server) info(inst *instance) GraphInfo {
	return GraphInfo{
		Name:     inst.name,
		Nodes:    inst.g.NumNodes(),
		Edges:    inst.g.NumEdges(),
		Weighted: inst.g.Weighted(),
		Machines: inst.machines,
		Ghosts:   inst.cluster.NumGhosts(),
	}
}

func (s *Server) machinesFor(req *Request) int {
	if req.Machines > 0 {
		return req.Machines
	}
	return s.cfg.DefaultMachines
}

func (s *Server) handleLoad(req *Request) Response {
	if req.Graph == "" || req.Path == "" {
		return errResp("load needs graph and path")
	}
	f, err := os.Open(req.Path)
	if err != nil {
		return errResp("open %s: %v", req.Path, err)
	}
	defer f.Close()
	var g *graph.Graph
	if strings.HasSuffix(req.Path, ".bin") {
		g, err = graph.ReadBinary(f)
	} else {
		g, err = graph.ReadEdgeList(f)
	}
	if err != nil {
		return errResp("parse %s: %v", req.Path, err)
	}
	resp, _ := s.admit(req.Graph, g, s.machinesFor(req))
	return resp
}

func (s *Server) handleGenerate(req *Request) Response {
	if req.Graph == "" {
		return errResp("generate needs graph")
	}
	var g *graph.Graph
	var err error
	switch req.Kind {
	case "rmat", "":
		scale, ef := req.Scale, req.EdgeFactor
		if scale == 0 {
			scale = 14
		}
		if ef == 0 {
			ef = 16
		}
		g, err = graph.RMAT(scale, ef, graph.TwitterLike(), req.Seed)
	case "uniform":
		n, m := req.Nodes, req.Edges
		if n == 0 {
			n = 1 << 14
		}
		if m == 0 {
			m = n * 16
		}
		g, err = graph.Uniform(n, m, req.Seed)
	case "grid":
		n := req.Nodes
		if n == 0 {
			n = 100
		}
		g, err = graph.Grid(n, n, n/2, req.Seed)
	default:
		return errResp("unknown generator %q", req.Kind)
	}
	if err != nil {
		return errResp("generate: %v", err)
	}
	if req.WeightHi > req.WeightLo {
		g = g.WithUniformWeights(req.WeightLo, req.WeightHi, req.Seed)
	}
	resp, _ := s.admit(req.Graph, g, s.machinesFor(req))
	return resp
}

func (s *Server) handleRun(req *Request) Response {
	s.mu.Lock()
	inst, ok := s.instances[req.Graph]
	s.mu.Unlock()
	if !ok {
		return errResp("graph %q not loaded", req.Graph)
	}
	// FIFO fairness across clients: a bounded semaphore admits analyses in
	// arrival order.
	s.runSem <- struct{}{}
	s.active.Add(1)
	defer func() {
		s.active.Add(-1)
		<-s.runSem
	}()

	inst.mu.Lock()
	defer inst.mu.Unlock()
	start := time.Now()
	result, err := runAlgo(inst, req)
	if err != nil {
		// Engine-level job aborts (transport faults, timeouts) surface here
		// as error responses — the server and its other instances stay up.
		s.failedRuns.Add(1)
		return errResp("%s on %s: %v", req.Algo, req.Graph, err)
	}
	result.Millis = float64(time.Since(start).Microseconds()) / 1000
	s.recordRunDuration(result.Millis)
	s.runsServed.Add(1)
	return Response{OK: true, Result: result}
}

// recordRunDuration appends one analysis duration to the percentile window.
func (s *Server) recordRunDuration(millis float64) {
	s.durMu.Lock()
	if len(s.durs) < runDurWindow {
		s.durs = append(s.durs, millis)
	} else {
		s.durs[s.durNext%runDurWindow] = millis
	}
	s.durNext++
	s.durMu.Unlock()
}

// runPercentiles returns the (p50, p90, p99) of the duration window, or
// zeros with no completed runs.
func (s *Server) runPercentiles() (p50, p90, p99 float64) {
	s.durMu.Lock()
	window := make([]float64, len(s.durs))
	copy(window, s.durs)
	s.durMu.Unlock()
	if len(window) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(window)
	at := func(q float64) float64 {
		i := int(q * float64(len(window)))
		if i >= len(window) {
			i = len(window) - 1
		}
		return window[i]
	}
	return at(0.50), at(0.90), at(0.99)
}

func runAlgo(inst *instance, req *Request) (*RunResult, error) {
	iters := req.Iterations
	if iters <= 0 {
		iters = 10
	}
	damping := req.Damping
	if damping == 0 {
		damping = 0.85
	}
	threshold := req.Threshold
	if threshold == 0 {
		threshold = 1e-7
	}
	topK := req.TopK
	if topK <= 0 {
		topK = 5
	}
	c := inst.cluster
	res := &RunResult{Algo: req.Algo}
	var f64s []float64
	var i64s []int64
	var met algorithms.Metrics
	var err error
	descending := true
	switch req.Algo {
	case "pagerank":
		f64s, met, err = algorithms.PageRankPull(c, iters, damping)
	case "pagerank-push":
		f64s, met, err = algorithms.PageRankPush(c, iters, damping)
	case "pagerank-approx":
		f64s, met, err = algorithms.PageRankApprox(c, damping, threshold, 100000)
	case "eigenvector":
		f64s, met, err = algorithms.Eigenvector(c, iters)
	case "wcc":
		i64s, met, err = algorithms.WCC(c, 100000)
		if err == nil {
			comps := map[int64]bool{}
			for _, l := range i64s {
				comps[l] = true
			}
			res.Extra = fmt.Sprintf("%d components", len(comps))
		}
	case "sssp":
		if !inst.g.Weighted() {
			return nil, fmt.Errorf("graph is unweighted")
		}
		f64s, met, err = algorithms.SSSP(c, req.Source, 100000)
		descending = false
	case "hopdist":
		i64s, met, err = algorithms.HopDist(c, req.Source, 100000)
		descending = false
	case "kcore":
		var best int64
		best, i64s, met, err = algorithms.KCore(c, 0)
		if err == nil {
			res.Extra = fmt.Sprintf("max core %d", best)
		}
	case "triangles":
		var total int64
		total, met, err = algorithms.TriangleCount(c, inst.g)
		if err == nil {
			res.Extra = fmt.Sprintf("%d transitive triads", total)
		}
	case "ppr":
		f64s, met, err = algorithms.PersonalizedPageRank(c, []graph.NodeID{req.Source}, iters, damping)
	default:
		return nil, fmt.Errorf("unknown algorithm %q", req.Algo)
	}
	if err != nil {
		return nil, err
	}
	res.Iterations = met.Iterations
	res.TopVertices = topVertices(f64s, i64s, topK, descending)
	return res, nil
}

func topVertices(f64s []float64, i64s []int64, k int, descending bool) []TopVertex {
	var all []TopVertex
	switch {
	case f64s != nil:
		for n, v := range f64s {
			if !math.IsInf(v, 0) && !math.IsNaN(v) {
				all = append(all, TopVertex{Node: uint32(n), Value: v})
			}
		}
	case i64s != nil:
		for n, v := range i64s {
			if v != math.MaxInt64 {
				all = append(all, TopVertex{Node: uint32(n), Value: float64(v)})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if descending {
			return all[i].Value > all[j].Value
		}
		return all[i].Value < all[j].Value
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// handleMutate applies an edge batch to a loaded instance and reloads the
// engine from a fresh snapshot (§6: "using snapshots of these graphs for
// algorithms which do not support graph updates").
func (s *Server) handleMutate(req *Request) Response {
	s.mu.Lock()
	inst, ok := s.instances[req.Graph]
	s.mu.Unlock()
	if !ok {
		return errResp("graph %q not loaded", req.Graph)
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.dyn == nil {
		inst.dyn = graph.DynamicFrom(inst.g)
	}
	toEdges := func(specs []EdgeSpec) ([]graph.Edge, bool) {
		out := make([]graph.Edge, len(specs))
		weighted := false
		for i, e := range specs {
			out[i] = graph.Edge{Src: e.Src, Dst: e.Dst, Weight: e.Weight}
			if e.Weight != 0 {
				weighted = true
			}
		}
		return out, weighted
	}
	add, addWeighted := toEdges(req.Add)
	remove, _ := toEdges(req.Remove)
	matched, err := inst.dyn.Apply(add, remove, addWeighted || inst.g.Weighted())
	if err != nil {
		return errResp("mutate %s: %v", req.Graph, err)
	}
	snap, err := inst.dyn.Snapshot()
	if err != nil {
		return errResp("snapshot %s: %v", req.Graph, err)
	}
	if err := inst.cluster.Load(snap); err != nil {
		return errResp("reload %s: %v", req.Graph, err)
	}
	s.mu.Lock()
	s.resident += snap.NumEdges() - inst.g.NumEdges()
	s.mu.Unlock()
	inst.g = snap
	return Response{
		OK:     true,
		Graphs: []GraphInfo{s.info(inst)},
		Result: &RunResult{Algo: "mutate", Extra: fmt.Sprintf("%d removals matched", matched)},
	}
}

func (s *Server) handleList() Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := Response{OK: true}
	names := make([]string, 0, len(s.instances))
	for name := range s.instances {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		resp.Graphs = append(resp.Graphs, s.info(s.instances[name]))
	}
	return resp
}

func (s *Server) handleDrop(req *Request) Response {
	s.mu.Lock()
	inst, ok := s.instances[req.Graph]
	if ok {
		delete(s.instances, req.Graph)
		s.resident -= inst.g.NumEdges()
	}
	s.mu.Unlock()
	if !ok {
		return errResp("graph %q not loaded", req.Graph)
	}
	// Wait for any in-flight analysis on this instance, then release.
	inst.mu.Lock()
	inst.cluster.Shutdown()
	inst.mu.Unlock()
	return Response{OK: true}
}

func (s *Server) handleStats() Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	var transportErrors, jobs, aborts int64
	var wireRaw, wireBytes int64
	var lastAbort *AbortSummary
	var lastWhen time.Time
	for _, inst := range s.instances {
		snap := inst.cluster.TrafficSnapshot()
		transportErrors += snap.SendErrors + snap.RecvErrors
		wireRaw += snap.CompressRawBytes
		wireBytes += snap.CompressWireBytes
		jobs += inst.reg.JobsObserved()
		aborts += inst.reg.AbortsObserved()
		if d := inst.reg.LastAbort(); d != nil && d.When.After(lastWhen) {
			lastWhen = d.When
			lastAbort = &AbortSummary{
				Graph:      inst.name,
				Job:        d.Job,
				Name:       d.Name,
				Err:        d.Err,
				AgeSeconds: time.Since(d.When).Seconds(),
				Spans:      len(d.Spans),
			}
		}
	}
	p50, p90, p99 := s.runPercentiles()
	compressionRatio := 1.0
	if wireRaw > 0 {
		compressionRatio = float64(wireBytes) / float64(wireRaw)
	}
	return Response{OK: true, Stats: &ServerStats{
		LoadedGraphs:     len(s.instances),
		ResidentEdges:    s.resident,
		MaxEdges:         s.cfg.MaxResidentEdges,
		RunsServed:       s.runsServed.Load(),
		FailedRuns:       s.failedRuns.Load(),
		ActiveAnalyses:   int(s.active.Load()),
		TransportErrors:  transportErrors,
		WireRawBytes:     wireRaw,
		WireBytes:        wireBytes,
		WireSavedBytes:   wireRaw - wireBytes,
		CompressionRatio: compressionRatio,
		UptimeSeconds:    time.Since(s.start).Seconds(),
		RunP50Millis:     p50,
		RunP90Millis:     p90,
		RunP99Millis:     p99,
		JobsObserved:     jobs,
		AbortsSeen:       aborts,
		LastAbort:        lastAbort,
	}}
}
