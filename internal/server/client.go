package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// Client is a synchronous connection to a pgxd server. Safe for concurrent
// use: requests serialize over the single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *json.Decoder
	enc  *json.Encoder
}

// Dial connects to a server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		enc:  json.NewEncoder(conn),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and waits for its response.
func (c *Client) Do(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("client: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("client: recv: %w", err)
	}
	return resp, nil
}

// do unwraps application-level errors.
func (c *Client) do(req Request) (Response, error) {
	resp, err := c.Do(req)
	if err != nil {
		return resp, err
	}
	if !resp.OK {
		return resp, fmt.Errorf("client: server: %s", resp.Error)
	}
	return resp, nil
}

// Generate creates and loads a synthetic graph on the server.
func (c *Client) Generate(req Request) (GraphInfo, error) {
	req.Op = "generate"
	resp, err := c.do(req)
	if err != nil {
		return GraphInfo{}, err
	}
	if len(resp.Graphs) != 1 {
		return GraphInfo{}, fmt.Errorf("client: malformed generate response")
	}
	return resp.Graphs[0], nil
}

// Load reads a graph file on the server host and loads it.
func (c *Client) Load(name, path string, machines int) (GraphInfo, error) {
	resp, err := c.do(Request{Op: "load", Graph: name, Path: path, Machines: machines})
	if err != nil {
		return GraphInfo{}, err
	}
	if len(resp.Graphs) != 1 {
		return GraphInfo{}, fmt.Errorf("client: malformed load response")
	}
	return resp.Graphs[0], nil
}

// Run executes one analysis.
func (c *Client) Run(req Request) (*RunResult, error) {
	req.Op = "run"
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, fmt.Errorf("client: malformed run response")
	}
	return resp.Result, nil
}

// Cancel kills queued and running analyses labeled tag (op=run's Tag
// field), optionally restricted to one tenant. Returns how many runs
// matched. Issue it from a second connection: the canceled run's own
// connection is blocked waiting for its response.
func (c *Client) Cancel(tag, tenant string) (int, error) {
	resp, err := c.do(Request{Op: "cancel", Tag: tag, Tenant: tenant})
	if err != nil {
		return 0, err
	}
	if resp.Result == nil {
		return 0, fmt.Errorf("client: malformed cancel response")
	}
	var n int
	fmt.Sscanf(resp.Result.Extra, "%d", &n)
	return n, nil
}

// Mutate applies an edge batch to a loaded graph and reloads the engine
// from a fresh snapshot. Returns the updated graph info.
func (c *Client) Mutate(name string, add, remove []EdgeSpec) (GraphInfo, error) {
	resp, err := c.do(Request{Op: "mutate", Graph: name, Add: add, Remove: remove})
	if err != nil {
		return GraphInfo{}, err
	}
	if len(resp.Graphs) != 1 {
		return GraphInfo{}, fmt.Errorf("client: malformed mutate response")
	}
	return resp.Graphs[0], nil
}

// List returns the loaded graph instances.
func (c *Client) List() ([]GraphInfo, error) {
	resp, err := c.do(Request{Op: "list"})
	if err != nil {
		return nil, err
	}
	return resp.Graphs, nil
}

// Drop unloads a graph and frees its engine.
func (c *Client) Drop(name string) error {
	_, err := c.do(Request{Op: "drop", Graph: name})
	return err
}

// Stats returns server-level accounting.
func (c *Client) Stats() (*ServerStats, error) {
	resp, err := c.do(Request{Op: "stats"})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("client: malformed stats response")
	}
	return resp.Stats, nil
}
