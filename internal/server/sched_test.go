package server

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNearestRankPercentiles pins the nearest-rank formula with golden
// values. The regression this guards: int(q*n) truncation returned the max
// of a 2-sample window for p50 (rank 1 of [0,1]) instead of the min.
func TestNearestRankPercentiles(t *testing.T) {
	cases := []struct {
		sorted []float64
		q      float64
		want   float64
	}{
		{[]float64{7}, 0.50, 7},
		{[]float64{7}, 0.99, 7},
		{[]float64{1, 2}, 0.50, 1}, // the old int(q*n) indexing returned 2
		{[]float64{1, 2}, 0.90, 2},
		{[]float64{1, 2, 3}, 0.50, 2},
		{[]float64{1, 2, 3, 4}, 0.50, 2},
		{[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.50, 5},
		{[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.90, 9},
		{[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.99, 10},
		{nil, 0.50, 0},
	}
	for _, tc := range cases {
		if got := nearestRank(tc.sorted, tc.q); got != tc.want {
			t.Errorf("nearestRank(%v, %v) = %v, want %v", tc.sorted, tc.q, got, tc.want)
		}
	}
}

// hookGate wires Config.runHook so a run carrying Tag "block" parks after
// admission (engine held) until release is closed. entered signals each
// parked run.
type hookGate struct {
	entered chan struct{}
	release chan struct{}
}

func newHookGate() *hookGate {
	return &hookGate{
		entered: make(chan struct{}, 16),
		release: make(chan struct{}),
	}
}

func (h *hookGate) hook(req *Request) {
	if req.Tag == "block" {
		h.entered <- struct{}{}
		<-h.release
	}
}

// TestBusyGraphDoesNotStarveOthers is the admission regression test: with
// the old runSem a second request for a busy graph charged a global slot and
// then slept on the instance lock, starving every other graph. Now the slot
// is charged only when the run can execute, so graph "b" proceeds while two
// requests contend for graph "a"'s single engine.
func TestBusyGraphDoesNotStarveOthers(t *testing.T) {
	gate := newHookGate()
	cfg := DefaultServerConfig()
	cfg.MaxConcurrentAnalyses = 2 // old code: a1 + queued a2 consume both slots
	cfg.AnalysisPoolSize = 1      // one engine per graph forces same-graph queueing
	cfg.runHook = gate.hook
	s := startServer(t, cfg)
	c := dial(t, s)

	for _, name := range []string{"a", "b"} {
		if _, err := c.Generate(Request{Graph: name, Kind: "rmat", Scale: 9, EdgeFactor: 4, Seed: 3, Machines: 2}); err != nil {
			t.Fatal(err)
		}
	}

	// a1 holds graph a's only engine inside the hook.
	a1 := dial(t, s)
	a1Done := make(chan error, 1)
	go func() {
		_, err := a1.Run(Request{Graph: "a", Algo: "pagerank", Iterations: 2, Tag: "block"})
		a1Done <- err
	}()
	<-gate.entered

	// a2 queues behind a1 (same graph, no idle engine).
	a2 := dial(t, s)
	a2Done := make(chan error, 1)
	go func() {
		_, err := a2.Run(Request{Graph: "a", Algo: "pagerank", Iterations: 2})
		a2Done <- err
	}()
	// Give a2 time to reach the admission queue.
	time.Sleep(50 * time.Millisecond)

	// Graph b must run now, not after a1/a2 finish.
	bDone := make(chan error, 1)
	go func() {
		_, err := c.Run(Request{Graph: "b", Algo: "pagerank", Iterations: 2})
		bDone <- err
	}()
	select {
	case err := <-bDone:
		if err != nil {
			t.Fatalf("run on idle graph b: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run on graph b starved behind busy graph a")
	}

	close(gate.release)
	if err := <-a1Done; err != nil {
		t.Fatalf("a1: %v", err)
	}
	if err := <-a2Done; err != nil {
		t.Fatalf("a2: %v", err)
	}
}

// TestCloseUnblocksQueuedRun: Server.Close must not wedge behind a request
// waiting for admission; the queued run gets a clean shutdown error.
func TestCloseUnblocksQueuedRun(t *testing.T) {
	gate := newHookGate()
	cfg := DefaultServerConfig()
	cfg.MaxConcurrentAnalyses = 1
	cfg.AnalysisPoolSize = 1
	cfg.runHook = gate.hook
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := dial(t, s)
	if _, err := c.Generate(Request{Graph: "g", Kind: "rmat", Scale: 9, EdgeFactor: 4, Seed: 3, Machines: 2}); err != nil {
		t.Fatal(err)
	}

	// r1 holds the only engine inside the hook; r2 waits in the queue.
	r1 := dial(t, s)
	r1Done := make(chan error, 1)
	go func() {
		_, err := r1.Run(Request{Graph: "g", Algo: "pagerank", Iterations: 2, Tag: "block"})
		r1Done <- err
	}()
	<-gate.entered
	r2 := dial(t, s)
	r2Done := make(chan error, 1)
	go func() {
		_, err := r2.Run(Request{Graph: "g", Algo: "pagerank", Iterations: 2})
		r2Done <- err
	}()
	time.Sleep(50 * time.Millisecond)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Close()
	}()

	// The queued r2 must resolve promptly even though r1 is still parked in
	// its hook (the old code left it waiting on the semaphore forever).
	select {
	case err := <-r2Done:
		if err == nil {
			t.Fatal("queued run succeeded during shutdown, want error")
		}
		if !strings.Contains(err.Error(), "shutting down") {
			t.Fatalf("queued run error = %v, want shutdown notice", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued run still blocked 10s into Close")
	}

	close(gate.release)
	<-r1Done // r1's job was canceled by shutdown; either error shape is fine
	wg.Wait()
}

// TestDeadlineCancelsRunningJob: a request deadline aborts the engine job
// through the cancellation latch — the server and the engine survive and
// serve the next run.
func TestDeadlineCancelsRunningJob(t *testing.T) {
	cfg := DefaultServerConfig()
	cfg.AnalysisPoolSize = 1
	s := startServer(t, cfg)
	c := dial(t, s)
	if _, err := c.Generate(Request{Graph: "g", Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 3, Machines: 2}); err != nil {
		t.Fatal(err)
	}

	// 100k iterations cannot finish inside 150ms; the deadline must abort.
	start := time.Now()
	_, err := c.Run(Request{Graph: "g", Algo: "pagerank", Iterations: 100000, TimeoutMillis: 150})
	if err == nil {
		t.Fatal("run completed despite deadline")
	}
	if !strings.Contains(err.Error(), "deadline exceeded") {
		t.Fatalf("error = %v, want deadline notice", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline abort took %v", elapsed)
	}

	// Same engine, next lease: a normal run succeeds (latch was cleared).
	if _, err := c.Run(Request{Graph: "g", Algo: "pagerank", Iterations: 3}); err != nil {
		t.Fatalf("run after deadline abort: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DeadlineExceededRuns < 1 {
		t.Errorf("DeadlineExceededRuns = %d, want >= 1", st.DeadlineExceededRuns)
	}
	if st.RunsServed != 1 {
		t.Errorf("RunsServed = %d, want 1", st.RunsServed)
	}
}

// TestDeadlineExpiresInQueue: a request whose deadline passes while still
// queued is rejected without ever holding an engine.
func TestDeadlineExpiresInQueue(t *testing.T) {
	gate := newHookGate()
	cfg := DefaultServerConfig()
	cfg.MaxConcurrentAnalyses = 1
	cfg.AnalysisPoolSize = 1
	cfg.runHook = gate.hook
	s := startServer(t, cfg)
	c := dial(t, s)
	if _, err := c.Generate(Request{Graph: "g", Kind: "rmat", Scale: 9, EdgeFactor: 4, Seed: 3, Machines: 2}); err != nil {
		t.Fatal(err)
	}

	r1 := dial(t, s)
	r1Done := make(chan error, 1)
	go func() {
		_, err := r1.Run(Request{Graph: "g", Algo: "pagerank", Iterations: 2, Tag: "block"})
		r1Done <- err
	}()
	<-gate.entered

	_, err := c.Run(Request{Graph: "g", Algo: "pagerank", Iterations: 2, TimeoutMillis: 100})
	if err == nil || !strings.Contains(err.Error(), "deadline exceeded") {
		t.Fatalf("queued run error = %v, want queue-deadline notice", err)
	}

	close(gate.release)
	if err := <-r1Done; err != nil {
		t.Fatalf("r1: %v", err)
	}
}

// TestCancelByTag: op=cancel from a second connection aborts a running
// tagged analysis via the engine latch.
func TestCancelByTag(t *testing.T) {
	started := make(chan struct{}, 1)
	cfg := DefaultServerConfig()
	cfg.AnalysisPoolSize = 1
	cfg.runHook = func(req *Request) {
		if req.Tag == "longjob" {
			started <- struct{}{}
		}
	}
	s := startServer(t, cfg)
	c := dial(t, s)
	if _, err := c.Generate(Request{Graph: "g", Kind: "rmat", Scale: 10, EdgeFactor: 8, Seed: 3, Machines: 2}); err != nil {
		t.Fatal(err)
	}

	runDone := make(chan error, 1)
	r := dial(t, s)
	go func() {
		_, err := r.Run(Request{Graph: "g", Algo: "pagerank", Iterations: 100000, Tag: "longjob", Tenant: "acme"})
		runDone <- err
	}()
	<-started

	n, err := c.Cancel("longjob", "")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("cancel matched %d runs, want 1", n)
	}
	select {
	case err := <-runDone:
		if err == nil {
			t.Fatal("tagged run completed despite cancel")
		}
		if !strings.Contains(err.Error(), "canceled") {
			t.Fatalf("run error = %v, want cancel notice", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("tagged run did not stop within 10s of cancel")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CanceledRuns < 1 {
		t.Errorf("CanceledRuns = %d, want >= 1", st.CanceledRuns)
	}
}

// TestTenantQuota: one tenant at its quota queues its own work but cannot
// block other tenants, and the stats op reports the per-tenant breakdown.
func TestTenantQuota(t *testing.T) {
	gate := newHookGate()
	cfg := DefaultServerConfig()
	cfg.MaxConcurrentAnalyses = 4
	cfg.AnalysisPoolSize = 2
	cfg.TenantQuota = 1
	cfg.runHook = gate.hook
	s := startServer(t, cfg)
	c := dial(t, s)
	if _, err := c.Generate(Request{Graph: "g", Kind: "rmat", Scale: 9, EdgeFactor: 4, Seed: 3, Machines: 2}); err != nil {
		t.Fatal(err)
	}

	// acme's first run holds an engine; its second must queue on quota.
	r1 := dial(t, s)
	r1Done := make(chan error, 1)
	go func() {
		_, err := r1.Run(Request{Graph: "g", Algo: "pagerank", Iterations: 2, Tenant: "acme", Tag: "block"})
		r1Done <- err
	}()
	<-gate.entered
	r2 := dial(t, s)
	r2Done := make(chan error, 1)
	go func() {
		_, err := r2.Run(Request{Graph: "g", Algo: "pagerank", Iterations: 2, Tenant: "acme"})
		r2Done <- err
	}()
	time.Sleep(50 * time.Millisecond)

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	acme := st.Tenants["acme"]
	if acme == nil || acme.Running != 1 || acme.Queued != 1 {
		t.Fatalf("acme tenant stats = %+v, want running=1 queued=1", acme)
	}

	// Another tenant is not throttled by acme's quota.
	other := dial(t, s)
	otherDone := make(chan error, 1)
	go func() {
		_, err := other.Run(Request{Graph: "g", Algo: "pagerank", Iterations: 2, Tenant: "globex"})
		otherDone <- err
	}()
	select {
	case err := <-otherDone:
		if err != nil {
			t.Fatalf("globex run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("globex starved behind acme's quota")
	}

	close(gate.release)
	if err := <-r1Done; err != nil {
		t.Fatalf("acme r1: %v", err)
	}
	if err := <-r2Done; err != nil {
		t.Fatalf("acme r2: %v", err)
	}
}

// TestSameGraphConcurrency: with an engine pool of 2, two analyses on the
// same graph overlap — both are inside their hooks at once.
func TestSameGraphConcurrency(t *testing.T) {
	gate := newHookGate()
	cfg := DefaultServerConfig()
	cfg.MaxConcurrentAnalyses = 4
	cfg.AnalysisPoolSize = 2
	cfg.runHook = gate.hook
	s := startServer(t, cfg)
	c := dial(t, s)
	if _, err := c.Generate(Request{Graph: "g", Kind: "rmat", Scale: 9, EdgeFactor: 4, Seed: 3, Machines: 2}); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		cl := dial(t, s)
		go func() {
			_, err := cl.Run(Request{Graph: "g", Algo: "pagerank", Iterations: 2, Tag: "block"})
			done <- err
		}()
	}
	// Both runs must enter their hooks concurrently: each holds one of the
	// two pool engines.
	for i := 0; i < 2; i++ {
		select {
		case <-gate.entered:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d/2 same-graph runs admitted concurrently", i)
		}
	}
	close(gate.release)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

// TestPriorityOrdersQueue: when capacity frees, the queued high-priority
// request is admitted before an earlier-arrived low-priority one.
func TestPriorityOrdersQueue(t *testing.T) {
	gate := newHookGate()
	var order []string
	var orderMu sync.Mutex
	cfg := DefaultServerConfig()
	cfg.MaxConcurrentAnalyses = 1
	cfg.AnalysisPoolSize = 1
	cfg.PriorityAging = time.Hour // isolate pure priority order
	cfg.runHook = func(req *Request) {
		if req.Tag == "block" {
			gate.entered <- struct{}{}
			<-gate.release
			return
		}
		orderMu.Lock()
		order = append(order, req.Tenant)
		orderMu.Unlock()
	}
	s := startServer(t, cfg)
	c := dial(t, s)
	if _, err := c.Generate(Request{Graph: "g", Kind: "rmat", Scale: 9, EdgeFactor: 4, Seed: 3, Machines: 2}); err != nil {
		t.Fatal(err)
	}

	blocker := dial(t, s)
	blockerDone := make(chan error, 1)
	go func() {
		_, err := blocker.Run(Request{Graph: "g", Algo: "pagerank", Iterations: 2, Tag: "block"})
		blockerDone <- err
	}()
	<-gate.entered

	// Low priority arrives first, high priority second.
	var wg sync.WaitGroup
	runAs := func(tenant string, prio int) {
		defer wg.Done()
		cl := dial(t, s)
		if _, err := cl.Run(Request{Graph: "g", Algo: "pagerank", Iterations: 2, Tenant: tenant, Priority: prio}); err != nil {
			t.Errorf("%s: %v", tenant, err)
		}
	}
	wg.Add(2)
	go runAs("low", -2)
	time.Sleep(50 * time.Millisecond)
	go runAs("high", 5)
	time.Sleep(50 * time.Millisecond)

	close(gate.release)
	if err := <-blockerDone; err != nil {
		t.Fatalf("blocker: %v", err)
	}
	wg.Wait()
	orderMu.Lock()
	defer orderMu.Unlock()
	if len(order) != 2 || order[0] != "high" || order[1] != "low" {
		t.Fatalf("admission order = %v, want [high low]", order)
	}
}

// TestMemoryBudgetGate: with RunMemoryBudgetMB set, a run whose declared
// resident need does not fit next to the running set queues (counted as a
// budget deferral) while a smaller run sails past it — the memory gate
// skips, never blocks the queue — and admits once the big run releases.
func TestMemoryBudgetGate(t *testing.T) {
	gate := newHookGate()
	cfg := DefaultServerConfig()
	cfg.MaxConcurrentAnalyses = 4
	cfg.AnalysisPoolSize = 3 // engines are plentiful; only memory gates
	cfg.RunMemoryBudgetMB = 100
	cfg.runHook = gate.hook
	s := startServer(t, cfg)
	c := dial(t, s)
	if _, err := c.Generate(Request{Graph: "g", Kind: "rmat", Scale: 9, EdgeFactor: 4, Seed: 3, Machines: 2}); err != nil {
		t.Fatal(err)
	}

	// big1 (80 MB declared) holds an engine inside the hook.
	big1 := dial(t, s)
	big1Done := make(chan error, 1)
	go func() {
		_, err := big1.Run(Request{Graph: "g", Algo: "pagerank", Iterations: 2, Tag: "block", MaxResidentMB: 80})
		big1Done <- err
	}()
	<-gate.entered

	// big2 (80 MB) must queue: 80+80 > 100 even with engines idle.
	big2 := dial(t, s)
	big2Done := make(chan error, 1)
	go func() {
		_, err := big2.Run(Request{Graph: "g", Algo: "pagerank", Iterations: 2, MaxResidentMB: 80})
		big2Done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	select {
	case err := <-big2Done:
		t.Fatalf("over-budget run admitted while big1 held 80/100 MB (err=%v)", err)
	default:
	}

	// small (10 MB) fits beside big1 and must not wait behind big2.
	smallDone := make(chan error, 1)
	go func() {
		_, err := c.Run(Request{Graph: "g", Algo: "pagerank", Iterations: 2, MaxResidentMB: 10})
		smallDone <- err
	}()
	select {
	case err := <-smallDone:
		if err != nil {
			t.Fatalf("small run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("small run starved behind the memory-deferred big run")
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.BudgetDeferrals < 1 {
		t.Fatalf("BudgetDeferrals = %d, want >= 1", st.BudgetDeferrals)
	}
	if st.MemInUseMB != 80 {
		t.Fatalf("MemInUseMB = %d, want 80 (big1 only)", st.MemInUseMB)
	}

	close(gate.release)
	if err := <-big1Done; err != nil {
		t.Fatalf("big1: %v", err)
	}
	if err := <-big2Done; err != nil {
		t.Fatalf("big2 after release: %v", err)
	}
}
